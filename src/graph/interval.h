// Lifetime intervals and the left-edge algorithm.
//
// Conventional register allocation in HLS assigns variable lifetimes to a
// minimum number of registers with the left-edge algorithm (optimal for
// interval conflict graphs). This is the "conventional" baseline against
// which the testability-driven assignments of §3.2 and §5.1 are compared.
#pragma once

#include <vector>

namespace tsyn::graph {

/// A half-open lifetime [birth, death): the value is written at `birth` and
/// last read at `death` (alive during [birth, death)). Cyclic (loop-carried)
/// lifetimes that wrap the iteration boundary are modelled by the client as
/// death <= birth, meaning alive in [birth, end] U [0, death).
struct Interval {
  int birth = 0;
  int death = 0;
  bool wraps() const { return death <= birth; }
};

/// True if the two lifetimes overlap (cannot share a register), over a
/// schedule of `num_steps` control steps (needed to resolve wrapping).
bool lifetimes_overlap(const Interval& a, const Interval& b, int num_steps);

/// Left-edge assignment: result[i] = register index for interval i.
/// Wrapping intervals each get a dedicated register first (they conflict
/// with everything alive at the boundary); this matches standard practice.
/// Returns the number of registers used via `num_registers`.
std::vector<int> left_edge_assign(const std::vector<Interval>& intervals,
                                  int num_steps, int* num_registers);

}  // namespace tsyn::graph
