#include "graph/paths.h"

#include <algorithm>
#include <deque>

#include "graph/scc.h"

namespace tsyn::graph {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> in_deg(n, 0);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v : g.successors(u)) ++in_deg[v];

  std::deque<NodeId> ready;
  for (NodeId u = 0; u < n; ++u)
    if (in_deg[u] == 0) ready.push_back(u);

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (NodeId v : g.successors(u))
      if (--in_deg[v] == 0) ready.push_back(v);
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::vector<int> bfs_distances(const Digraph& g,
                               const std::vector<NodeId>& sources) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    if (dist[s] == -1) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.successors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<bool> reachable_from(const Digraph& g,
                                 const std::vector<NodeId>& sources) {
  const std::vector<int> dist = bfs_distances(g, sources);
  std::vector<bool> reach(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) reach[i] = dist[i] >= 0;
  return reach;
}

std::optional<std::vector<int>> dag_longest_distances(
    const Digraph& g, const std::vector<NodeId>& sources) {
  const auto order = topological_order(g);
  if (!order) return std::nullopt;
  std::vector<int> dist(g.num_nodes(), -1);
  for (NodeId s : sources) dist[s] = 0;
  for (NodeId u : *order) {
    if (dist[u] < 0) continue;
    for (NodeId v : g.successors(u))
      dist[v] = std::max(dist[v], dist[u] + 1);
  }
  return dist;
}

std::optional<int> sequential_depth(const Digraph& g) {
  // Drop self-loops, then require acyclicity.
  Digraph h(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.successors(u))
      if (u != v) h.add_edge(u, v);
  if (!is_acyclic(h)) return std::nullopt;

  std::vector<NodeId> sources;
  for (NodeId u = 0; u < h.num_nodes(); ++u)
    if (h.in_degree(u) == 0) sources.push_back(u);
  // A graph with nodes but no in-degree-0 node is impossible here (acyclic).
  const auto dist = dag_longest_distances(h, sources);
  int depth = 0;
  for (int d : *dist) depth = std::max(depth, d);
  return depth;
}

}  // namespace tsyn::graph
