#include "graph/cycles.h"

#include <algorithm>

#include "graph/scc.h"

namespace tsyn::graph {

namespace {

// Johnson's algorithm state for the SCC currently being processed.
class JohnsonState {
 public:
  JohnsonState(const Digraph& g, std::size_t max_cycles,
               std::vector<Cycle>* out)
      : g_(g),
        blocked_(g.num_nodes(), false),
        block_list_(g.num_nodes()),
        out_(out),
        max_cycles_(max_cycles) {}

  // Enumerates all cycles whose minimum node is `start`, restricted to nodes
  // >= start that are in start's SCC (classic Johnson restriction).
  void run(NodeId start, const std::vector<bool>& in_scope) {
    start_ = start;
    in_scope_ = &in_scope;
    stack_.clear();
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      blocked_[u] = false;
      block_list_[u].clear();
    }
    circuit(start);
  }

  bool full() const { return out_->size() >= max_cycles_; }

 private:
  bool circuit(NodeId v) {
    if (full()) return true;
    bool found = false;
    stack_.push_back(v);
    blocked_[v] = true;
    for (NodeId w : g_.successors(v)) {
      if (!(*in_scope_)[w] || w < start_) continue;
      if (w == start_) {
        out_->push_back(stack_);
        found = true;
        if (full()) break;
      } else if (!blocked_[w]) {
        if (circuit(w)) found = true;
        if (full()) break;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (NodeId w : g_.successors(v)) {
        if (!(*in_scope_)[w] || w < start_) continue;
        auto& bl = block_list_[w];
        if (std::find(bl.begin(), bl.end(), v) == bl.end()) bl.push_back(v);
      }
    }
    stack_.pop_back();
    return found;
  }

  void unblock(NodeId u) {
    blocked_[u] = false;
    auto pending = std::move(block_list_[u]);
    block_list_[u].clear();
    for (NodeId w : pending)
      if (blocked_[w]) unblock(w);
  }

  const Digraph& g_;
  std::vector<bool> blocked_;
  std::vector<std::vector<NodeId>> block_list_;
  std::vector<NodeId> stack_;
  std::vector<Cycle>* out_;
  std::size_t max_cycles_;
  NodeId start_ = 0;
  const std::vector<bool>* in_scope_ = nullptr;
};

}  // namespace

std::vector<Cycle> elementary_cycles(const Digraph& g,
                                     std::size_t max_cycles) {
  std::vector<Cycle> cycles;
  JohnsonState state(g, max_cycles, &cycles);

  // Process nodes in increasing order; the scope for node s is the SCC of s
  // in the subgraph induced by nodes >= s.
  for (NodeId s = 0; s < g.num_nodes() && !state.full(); ++s) {
    std::vector<bool> keep(g.num_nodes(), false);
    for (NodeId u = s; u < g.num_nodes(); ++u) keep[u] = true;
    std::vector<NodeId> map;
    const Digraph sub = g.induced_subgraph(keep, &map);
    const SccResult scc = strongly_connected_components(sub);

    std::vector<bool> in_scope(g.num_nodes(), false);
    const int comp_of_s = scc.component[map[s]];
    bool nontrivial = scc.members[comp_of_s].size() > 1 || g.has_self_loop(s);
    if (!nontrivial) continue;
    for (NodeId u = s; u < g.num_nodes(); ++u)
      if (scc.component[map[u]] == comp_of_s) in_scope[u] = true;

    state.run(s, in_scope);
  }

  std::stable_sort(cycles.begin(), cycles.end(),
                   [](const Cycle& a, const Cycle& b) {
                     return a.size() < b.size();
                   });
  return cycles;
}

std::size_t longest_cycle_length(const Digraph& g, std::size_t max_cycles) {
  std::size_t longest = 0;
  for (const Cycle& c : elementary_cycles(g, max_cycles))
    longest = std::max(longest, c.size());
  return longest;
}

}  // namespace tsyn::graph
