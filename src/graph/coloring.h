// Undirected conflict graphs and vertex coloring.
//
// Register assignment is classically "color the variable conflict graph with
// a minimum number of colors" (§5.1); the BIST assignment of Avra [3] adds
// extra conflict edges so that coloring also minimizes self-adjacent
// registers. Both run through this module.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace tsyn::graph {

/// Simple undirected graph over dense node ids.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  explicit UndirectedGraph(int num_nodes);

  NodeId add_node();
  /// Adds edge {u, v}; ignores duplicates and self-edges.
  void add_edge(NodeId u, NodeId v);
  bool has_edge(NodeId u, NodeId v) const;

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  std::size_t num_edges() const { return num_edges_; }
  const std::vector<NodeId>& neighbors(NodeId u) const { return adj_[u]; }
  int degree(NodeId u) const { return static_cast<int>(adj_[u].size()); }

  /// Complement graph (used to turn conflict graphs into compatibility
  /// graphs for clique partitioning).
  UndirectedGraph complement() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

/// A coloring: color[u] in [0, num_colors).
struct Coloring {
  std::vector<int> color;
  int num_colors = 0;
};

/// DSATUR greedy coloring. Near-optimal on the interval-like conflict graphs
/// arising from variable lifetimes (optimal on chordal graphs when ties are
/// broken by elimination order, which DSATUR approximates well).
Coloring dsatur_coloring(const UndirectedGraph& g);

/// Greedy coloring in a caller-specified node order (smallest feasible
/// color). Used by assignment heuristics that encode preferences as order.
Coloring sequential_coloring(const UndirectedGraph& g,
                             const std::vector<NodeId>& order);

/// True if no edge joins two same-colored nodes.
bool is_proper_coloring(const UndirectedGraph& g, const Coloring& c);

}  // namespace tsyn::graph
