// Path and depth queries on digraphs.
//
// Sequential depth — the longest FF-to-FF distance in the S-graph — is the
// second testability measure of §3.1 (ATPG effort grows linearly with it).
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace tsyn::graph {

/// Topological order of an acyclic graph; std::nullopt if the graph has a
/// cycle (self-loops count as cycles here).
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

/// BFS shortest distances (in edges) from `sources`; -1 for unreachable.
std::vector<int> bfs_distances(const Digraph& g,
                               const std::vector<NodeId>& sources);

/// Nodes reachable from `sources` (including the sources themselves).
std::vector<bool> reachable_from(const Digraph& g,
                                 const std::vector<NodeId>& sources);

/// Longest path length (in edges) in a DAG from any of `sources` to each
/// node; -1 for unreachable. Precondition: g restricted to reachable nodes
/// is acyclic (checked; returns std::nullopt on a cycle).
std::optional<std::vector<int>> dag_longest_distances(
    const Digraph& g, const std::vector<NodeId>& sources);

/// Sequential depth of a DAG: the longest path (in edges) from any in-degree-0
/// node to any node. Self-loops are ignored (the partial-scan convention).
/// Returns std::nullopt if non-self-loop cycles remain.
std::optional<int> sequential_depth(const Digraph& g);

}  // namespace tsyn::graph
