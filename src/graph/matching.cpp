#include "graph/matching.h"

namespace tsyn::graph {

namespace {

bool try_augment(const std::vector<std::vector<int>>& adj, int l,
                 std::vector<bool>& visited, std::vector<int>& match_l,
                 std::vector<int>& match_r) {
  for (int r : adj[l]) {
    if (visited[r]) continue;
    visited[r] = true;
    if (match_r[r] < 0 ||
        try_augment(adj, match_r[r], visited, match_l, match_r)) {
      match_l[l] = r;
      match_r[r] = l;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<int> max_bipartite_matching(
    const std::vector<std::vector<int>>& adj_left_to_right, int num_right,
    std::vector<int>* match_right) {
  const int num_left = static_cast<int>(adj_left_to_right.size());
  std::vector<int> match_l(num_left, -1);
  std::vector<int> match_r(num_right, -1);
  for (int l = 0; l < num_left; ++l) {
    std::vector<bool> visited(num_right, false);
    try_augment(adj_left_to_right, l, visited, match_l, match_r);
  }
  if (match_right) *match_right = std::move(match_r);
  return match_l;
}

}  // namespace tsyn::graph
