#include "graph/mfvs.h"

#include <algorithm>
#include <cassert>

#include "graph/scc.h"

namespace tsyn::graph {

namespace {

// Strips self-loops if requested; MFVS then only needs to kill non-trivial
// SCCs.
Digraph normalize(const Digraph& g, const MfvsOptions& opts) {
  Digraph h(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.successors(u))
      if (!(opts.ignore_self_loops && u == v)) h.add_edge_unique(u, v);
  return h;
}

// Nodes currently on a cycle of h restricted to `alive`.
std::vector<NodeId> cyclic_nodes(const Digraph& h,
                                 const std::vector<bool>& alive) {
  std::vector<NodeId> map;
  const Digraph sub = h.induced_subgraph(alive, &map);
  const SccResult scc = strongly_connected_components(sub);
  std::vector<NodeId> out;
  for (NodeId u = 0; u < h.num_nodes(); ++u) {
    if (!alive[u]) continue;
    const NodeId su = map[u];
    if (scc.members[scc.component[su]].size() > 1 || sub.has_self_loop(su))
      out.push_back(u);
  }
  return out;
}

}  // namespace

std::vector<NodeId> greedy_mfvs(const Digraph& g, MfvsOptions opts) {
  const Digraph h = normalize(g, opts);
  std::vector<bool> alive(h.num_nodes(), true);
  std::vector<NodeId> selected;

  for (;;) {
    const std::vector<NodeId> cyclic = cyclic_nodes(h, alive);
    if (cyclic.empty()) break;

    // Degree products restricted to the live cyclic subgraph.
    std::vector<bool> in_cyc(h.num_nodes(), false);
    for (NodeId u : cyclic) in_cyc[u] = true;
    NodeId best = -1;
    long best_score = -1;
    for (NodeId u : cyclic) {
      long in_d = 0;
      long out_d = 0;
      for (NodeId p : h.predecessors(u))
        if (alive[p] && in_cyc[p]) ++in_d;
      for (NodeId s : h.successors(u))
        if (alive[s] && in_cyc[s]) ++out_d;
      const long score = in_d * out_d;
      if (score > best_score) {
        best_score = score;
        best = u;
      }
    }
    assert(best >= 0);
    selected.push_back(best);
    alive[best] = false;
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

namespace {

// Branch and bound over the cyclic core: at each step pick a shortest cycle
// and branch on which of its nodes to delete.
class ExactSolver {
 public:
  explicit ExactSolver(const Digraph& h) : h_(h), alive_(h.num_nodes(), true) {}

  std::vector<NodeId> solve(std::size_t upper_bound_hint) {
    best_size_ = upper_bound_hint;
    best_.clear();
    current_.clear();
    recurse();
    return best_;
  }

 private:
  // Finds one shortest cycle in the live subgraph via BFS from each node;
  // empty if acyclic.
  std::vector<NodeId> shortest_cycle() const {
    std::vector<NodeId> best_cycle;
    for (NodeId s = 0; s < h_.num_nodes(); ++s) {
      if (!alive_[s]) continue;
      // BFS from s; find the shortest path back to s.
      std::vector<int> parent(h_.num_nodes(), -2);
      std::vector<NodeId> queue{s};
      parent[s] = -1;
      bool found = false;
      for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
        const NodeId u = queue[qi];
        for (NodeId v : h_.successors(u)) {
          if (!alive_[v]) continue;
          if (v == s) {
            // Reconstruct path s..u, cycle = that path.
            std::vector<NodeId> cyc;
            for (NodeId w = u; w != -1; w = parent[w]) cyc.push_back(w);
            std::reverse(cyc.begin(), cyc.end());
            if (best_cycle.empty() || cyc.size() < best_cycle.size())
              best_cycle = std::move(cyc);
            found = true;
            break;
          }
          if (parent[v] == -2) {
            parent[v] = u;
            queue.push_back(v);
          }
        }
      }
      if (best_cycle.size() == 1) break;  // cannot do better
    }
    return best_cycle;
  }

  void recurse() {
    if (current_.size() + 1 > best_size_ && !best_.empty()) return;
    if (current_.size() >= best_size_) return;
    const std::vector<NodeId> cyc = shortest_cycle();
    if (cyc.empty()) {
      best_ = current_;
      best_size_ = current_.size();
      return;
    }
    for (NodeId u : cyc) {
      alive_[u] = false;
      current_.push_back(u);
      recurse();
      current_.pop_back();
      alive_[u] = true;
    }
  }

  const Digraph& h_;
  std::vector<bool> alive_;
  std::vector<NodeId> current_;
  std::vector<NodeId> best_;
  std::size_t best_size_ = 0;
};

}  // namespace

std::vector<NodeId> exact_mfvs(const Digraph& g, MfvsOptions opts,
                               int max_nodes) {
  const Digraph h = normalize(g, opts);
  std::vector<bool> all(h.num_nodes(), true);
  const std::vector<NodeId> core = cyclic_nodes(h, all);
  const std::vector<NodeId> greedy = greedy_mfvs(g, opts);
  if (static_cast<int>(core.size()) > max_nodes) return greedy;
  if (core.empty()) return {};

  ExactSolver solver(h);
  std::vector<NodeId> best = solver.solve(greedy.size());
  if (best.empty() && !greedy.empty()) best = greedy;  // bound never improved
  std::sort(best.begin(), best.end());
  return best;
}

bool is_feedback_vertex_set(const Digraph& g, const std::vector<NodeId>& fvs,
                            MfvsOptions opts) {
  const Digraph h = normalize(g, opts);
  std::vector<bool> alive(h.num_nodes(), true);
  for (NodeId u : fvs) alive[u] = false;
  std::vector<NodeId> map;
  const Digraph sub = h.induced_subgraph(alive, &map);
  return is_acyclic(sub, /*ignore_self_loops=*/false);
}

}  // namespace tsyn::graph
