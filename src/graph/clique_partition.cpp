#include "graph/clique_partition.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tsyn::graph {

namespace {

// True if every member of a is compatible with every member of b.
bool cliques_compatible(const UndirectedGraph& g,
                        const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b) {
  for (NodeId u : a)
    for (NodeId v : b)
      if (!g.has_edge(u, v)) return false;
  return true;
}

double merge_gain(const UndirectedGraph& g, const std::vector<NodeId>& a,
                  const std::vector<NodeId>& b,
                  double (*weight)(NodeId, NodeId, const void*),
                  const void* ctx) {
  // Common-neighbor count approximated at clique granularity: number of
  // nodes outside a U b compatible with all of a and all of b.
  std::vector<bool> in_ab(g.num_nodes(), false);
  for (NodeId u : a) in_ab[u] = true;
  for (NodeId u : b) in_ab[u] = true;
  double gain = 0;
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (in_ab[w]) continue;
    bool common = true;
    for (NodeId u : a)
      if (!g.has_edge(u, w)) {
        common = false;
        break;
      }
    for (NodeId v : b) {
      if (!common) break;
      if (!g.has_edge(v, w)) common = false;
    }
    if (common) gain += 1.0;
  }
  if (weight) {
    for (NodeId u : a)
      for (NodeId v : b) gain += weight(u, v, ctx);
  }
  return gain;
}

}  // namespace

CliquePartition clique_partition(const UndirectedGraph& compatibility,
                                 double (*weight)(NodeId, NodeId,
                                                  const void*),
                                 const void* ctx) {
  const int n = compatibility.num_nodes();
  std::vector<std::vector<NodeId>> cliques(n);
  for (NodeId u = 0; u < n; ++u) cliques[u] = {u};

  for (;;) {
    int best_a = -1;
    int best_b = -1;
    double best_gain = -1;
    for (std::size_t i = 0; i < cliques.size(); ++i) {
      for (std::size_t j = i + 1; j < cliques.size(); ++j) {
        if (!cliques_compatible(compatibility, cliques[i], cliques[j]))
          continue;
        const double gain =
            merge_gain(compatibility, cliques[i], cliques[j], weight, ctx);
        if (gain > best_gain) {
          best_gain = gain;
          best_a = static_cast<int>(i);
          best_b = static_cast<int>(j);
        }
      }
    }
    if (best_a < 0) break;
    auto& a = cliques[best_a];
    auto& b = cliques[best_b];
    a.insert(a.end(), b.begin(), b.end());
    cliques.erase(cliques.begin() + best_b);
  }

  CliquePartition result;
  result.cliques = std::move(cliques);
  result.clique_of.assign(n, -1);
  for (std::size_t i = 0; i < result.cliques.size(); ++i) {
    std::sort(result.cliques[i].begin(), result.cliques[i].end());
    for (NodeId u : result.cliques[i])
      result.clique_of[u] = static_cast<int>(i);
  }
  return result;
}

bool is_valid_clique_partition(const UndirectedGraph& compatibility,
                               const CliquePartition& p) {
  for (const auto& clique : p.cliques)
    for (std::size_t i = 0; i < clique.size(); ++i)
      for (std::size_t j = i + 1; j < clique.size(); ++j)
        if (!compatibility.has_edge(clique[i], clique[j])) return false;
  // Every node covered exactly once.
  std::vector<int> seen(p.clique_of.size(), 0);
  for (const auto& clique : p.cliques)
    for (NodeId u : clique) ++seen[u];
  return std::all_of(seen.begin(), seen.end(),
                     [](int s) { return s == 1; });
}

}  // namespace tsyn::graph
