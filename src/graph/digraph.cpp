#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace tsyn::graph {

Digraph::Digraph(int num_nodes)
    : succ_(static_cast<std::size_t>(num_nodes)),
      pred_(static_cast<std::size_t>(num_nodes)) {
  assert(num_nodes >= 0);
}

NodeId Digraph::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  return num_nodes() - 1;
}

void Digraph::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++num_edges_;
}

void Digraph::add_edge_unique(NodeId u, NodeId v) {
  if (!has_edge(u, v)) add_edge(u, v);
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  const auto& s = succ_[u];
  return std::find(s.begin(), s.end(), v) != s.end();
}

Digraph Digraph::induced_subgraph(const std::vector<bool>& keep,
                                  std::vector<NodeId>* old_to_new) const {
  assert(static_cast<int>(keep.size()) == num_nodes());
  std::vector<NodeId> map(keep.size(), -1);
  int next = 0;
  for (NodeId u = 0; u < num_nodes(); ++u)
    if (keep[u]) map[u] = next++;
  Digraph sub(next);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : succ_[u])
      if (keep[v]) sub.add_edge(map[u], map[v]);
  }
  if (old_to_new) *old_to_new = std::move(map);
  return sub;
}

Digraph Digraph::reversed() const {
  Digraph rev(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u)
    for (NodeId v : succ_[u]) rev.add_edge(v, u);
  return rev;
}

}  // namespace tsyn::graph
