// Clique partitioning of compatibility graphs (Tseng–Siewiorek style).
//
// Functional-unit binding groups mutually compatible operations (no two in
// the same control step, same FU type) into cliques; each clique becomes one
// hardware unit. Testability-driven binding variants bias the merge order
// with edge weights (e.g. the state-coverage metric of [28]).
#pragma once

#include <vector>

#include "graph/coloring.h"

namespace tsyn::graph {

/// Partition of nodes into cliques of a compatibility graph:
/// clique_of[u] = clique index; cliques[i] = members.
struct CliquePartition {
  std::vector<int> clique_of;
  std::vector<std::vector<NodeId>> cliques;
};

/// Greedy clique partitioning: repeatedly merge the pair of cliques with the
/// highest number of common compatible neighbors (the Tseng–Siewiorek
/// heuristic), optionally weighted.
///
/// `weight(u, v)` — if provided — is added to the merge gain for each
/// cross pair; callers use it to encode testability preferences. Pass
/// nullptr for the unweighted classic.
CliquePartition clique_partition(
    const UndirectedGraph& compatibility,
    double (*weight)(NodeId, NodeId, const void* ctx) = nullptr,
    const void* ctx = nullptr);

/// Validates that every clique is complete in `compatibility`.
bool is_valid_clique_partition(const UndirectedGraph& compatibility,
                               const CliquePartition& p);

}  // namespace tsyn::graph
