#include "graph/interval.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tsyn::graph {

namespace {

// Alive-step mask of an interval over [0, num_steps).
std::vector<bool> alive_mask(const Interval& iv, int num_steps) {
  std::vector<bool> alive(num_steps, false);
  if (!iv.wraps()) {
    for (int s = iv.birth; s < iv.death; ++s) alive[s] = true;
  } else {
    // death <= birth: alive from birth to the end and from 0 to death.
    // birth == death means alive across the whole iteration.
    for (int s = iv.birth; s < num_steps; ++s) alive[s] = true;
    for (int s = 0; s < iv.death; ++s) alive[s] = true;
    if (iv.birth == iv.death)
      std::fill(alive.begin(), alive.end(), true);
  }
  return alive;
}

}  // namespace

bool lifetimes_overlap(const Interval& a, const Interval& b, int num_steps) {
  assert(num_steps > 0);
  const std::vector<bool> ma = alive_mask(a, num_steps);
  const std::vector<bool> mb = alive_mask(b, num_steps);
  for (int s = 0; s < num_steps; ++s)
    if (ma[s] && mb[s]) return true;
  return false;
}

std::vector<int> left_edge_assign(const std::vector<Interval>& intervals,
                                  int num_steps, int* num_registers) {
  assert(num_steps > 0);
  const int n = static_cast<int>(intervals.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Wrapping intervals first (they pairwise conflict at the last step and
  // each anchors a register); then by increasing birth — the left edge.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (intervals[a].wraps() != intervals[b].wraps())
      return intervals[a].wraps();
    if (intervals[a].birth != intervals[b].birth)
      return intervals[a].birth < intervals[b].birth;
    return a < b;
  });

  std::vector<int> assignment(n, -1);
  // One occupancy mask per register.
  std::vector<std::vector<bool>> occupancy;
  for (int idx : order) {
    const std::vector<bool> mask = alive_mask(intervals[idx], num_steps);
    int reg = -1;
    for (std::size_t r = 0; r < occupancy.size(); ++r) {
      bool clash = false;
      for (int s = 0; s < num_steps && !clash; ++s)
        clash = occupancy[r][s] && mask[s];
      if (!clash) {
        reg = static_cast<int>(r);
        break;
      }
    }
    if (reg < 0) {
      occupancy.emplace_back(num_steps, false);
      reg = static_cast<int>(occupancy.size()) - 1;
    }
    for (int s = 0; s < num_steps; ++s)
      if (mask[s]) occupancy[reg][s] = true;
    assignment[idx] = reg;
  }
  if (num_registers) *num_registers = static_cast<int>(occupancy.size());
  return assignment;
}

}  // namespace tsyn::graph
