// Strongly connected components (Tarjan) and derived structure queries.
//
// SCC analysis is the backbone of all loop-oriented testability measures:
// a circuit's S-graph is loop-free (apart from self-loops) iff every SCC is
// trivial, and partial-scan selection iterates SCC decomposition after each
// scan choice.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace tsyn::graph {

/// Result of an SCC decomposition.
struct SccResult {
  /// component[u] = id of u's SCC, in reverse topological order of the
  /// condensation (Tarjan numbering: a component is numbered before any
  /// component that can reach it).
  std::vector<int> component;
  int num_components = 0;

  /// Members of each component.
  std::vector<std::vector<NodeId>> members;
};

/// Tarjan's algorithm, iterative (safe for large gate-level graphs).
SccResult strongly_connected_components(const Digraph& g);

/// True if the SCC containing u is non-trivial (size > 1, or size 1 with a
/// self-loop).
bool in_cycle(const Digraph& g, const SccResult& scc, NodeId u);

/// Nodes that lie on at least one directed cycle (self-loops count unless
/// `ignore_self_loops`).
std::vector<NodeId> nodes_on_cycles(const Digraph& g,
                                    bool ignore_self_loops = false);

/// True if the graph has no directed cycle; self-loops are tolerated when
/// `ignore_self_loops` is set (the partial-scan convention: self-loops do not
/// impede sequential ATPG and need not be broken).
bool is_acyclic(const Digraph& g, bool ignore_self_loops = false);

/// Condensation digraph: one node per SCC, edges between distinct components.
Digraph condensation(const Digraph& g, const SccResult& scc);

}  // namespace tsyn::graph
