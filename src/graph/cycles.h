// Elementary cycle enumeration (Johnson's algorithm).
//
// The loop-cutting effectiveness measure of Potkonjak/Dey/Roy [33] and the
// boundary-variable method of Lee/Jha/Wolf [24] both reason about the set of
// elementary loops in the CDFG / S-graph, which this module enumerates.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace tsyn::graph {

/// One elementary cycle as a node sequence; the closing edge
/// back to front() is implicit. A self-loop is a single-element cycle.
using Cycle = std::vector<NodeId>;

/// Enumerates elementary cycles with Johnson's algorithm.
///
/// `max_cycles` bounds the enumeration (gate-level S-graphs can have an
/// exponential number of loops); enumeration stops once the bound is hit.
/// Returns cycles sorted by length, shortest first.
std::vector<Cycle> elementary_cycles(const Digraph& g,
                                     std::size_t max_cycles = 100000);

/// Length of the longest elementary cycle, 0 when acyclic. Respects the
/// same enumeration bound.
std::size_t longest_cycle_length(const Digraph& g,
                                 std::size_t max_cycles = 100000);

}  // namespace tsyn::graph
