#include "graph/coloring.h"

#include <algorithm>
#include <cassert>

namespace tsyn::graph {

UndirectedGraph::UndirectedGraph(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)) {
  assert(num_nodes >= 0);
}

NodeId UndirectedGraph::add_node() {
  adj_.emplace_back();
  return num_nodes() - 1;
}

void UndirectedGraph::add_edge(NodeId u, NodeId v) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (u == v || has_edge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

bool UndirectedGraph::has_edge(NodeId u, NodeId v) const {
  const auto& a = adj_[u];
  return std::find(a.begin(), a.end(), v) != a.end();
}

UndirectedGraph UndirectedGraph::complement() const {
  UndirectedGraph c(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    std::vector<bool> adj(num_nodes(), false);
    for (NodeId v : adj_[u]) adj[v] = true;
    for (NodeId v = u + 1; v < num_nodes(); ++v)
      if (!adj[v]) c.add_edge(u, v);
  }
  return c;
}

namespace {

int smallest_feasible_color(const UndirectedGraph& g,
                            const std::vector<int>& color, NodeId u) {
  std::vector<bool> used(g.degree(u) + 1, false);
  for (NodeId v : g.neighbors(u)) {
    const int c = color[v];
    if (c >= 0 && c < static_cast<int>(used.size())) used[c] = true;
  }
  int c = 0;
  while (used[c]) ++c;
  return c;
}

}  // namespace

Coloring dsatur_coloring(const UndirectedGraph& g) {
  const int n = g.num_nodes();
  Coloring result;
  result.color.assign(n, -1);

  std::vector<int> saturation(n, 0);
  std::vector<bool> done(n, false);
  for (int step = 0; step < n; ++step) {
    // Pick the uncolored node with max saturation, break ties by degree.
    NodeId pick = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (done[u]) continue;
      if (pick == -1 || saturation[u] > saturation[pick] ||
          (saturation[u] == saturation[pick] &&
           g.degree(u) > g.degree(pick)))
        pick = u;
    }
    const int c = smallest_feasible_color(g, result.color, pick);
    result.color[pick] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
    done[pick] = true;
    // Update saturation: count of distinct neighbor colors.
    for (NodeId v : g.neighbors(pick)) {
      if (done[v]) continue;
      bool seen = false;
      for (NodeId w : g.neighbors(v))
        if (w != pick && result.color[w] == c) {
          seen = true;
          break;
        }
      if (!seen) ++saturation[v];
    }
  }
  return result;
}

Coloring sequential_coloring(const UndirectedGraph& g,
                             const std::vector<NodeId>& order) {
  assert(static_cast<int>(order.size()) == g.num_nodes());
  Coloring result;
  result.color.assign(g.num_nodes(), -1);
  for (NodeId u : order) {
    const int c = smallest_feasible_color(g, result.color, u);
    result.color[u] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool is_proper_coloring(const UndirectedGraph& g, const Coloring& c) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (c.color[u] < 0 || c.color[u] >= c.num_colors) return false;
    for (NodeId v : g.neighbors(u))
      if (c.color[u] == c.color[v]) return false;
  }
  return true;
}

}  // namespace tsyn::graph
