// Minimum feedback vertex set (MFVS) selection.
//
// Gate-level partial scan (Cheng–Agrawal [10], Lee–Reddy [22]) breaks all
// S-graph loops except self-loops by scanning an (approximately) minimum set
// of flip-flops whose removal makes the S-graph acyclic. This module provides
// the greedy heuristic used as the gate-level baseline in EXP-SCANSEL, and an
// exact branch-and-bound solver for small graphs used to validate it.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace tsyn::graph {

struct MfvsOptions {
  /// When set (the partial-scan convention), self-loops do not need to be
  /// broken: a node whose only cycle is u->u is not selected.
  bool ignore_self_loops = true;
};

/// Greedy MFVS: repeatedly remove the node with the largest
/// in-degree * out-degree product among nodes on (non-self) cycles, until the
/// graph is acyclic. This mirrors the classic Lee–Reddy heuristic.
std::vector<NodeId> greedy_mfvs(const Digraph& g, MfvsOptions opts = {});

/// Exact minimum FVS via branch and bound; intended for graphs of up to a
/// few dozen cyclic nodes (used in tests and the FIG1 bench).
/// `max_nodes` guards against accidental use on big graphs: if the cyclic
/// core exceeds it, falls back to the greedy result.
std::vector<NodeId> exact_mfvs(const Digraph& g, MfvsOptions opts = {},
                               int max_nodes = 32);

/// Verifies that removing `fvs` makes g acyclic (up to self-loops when
/// opts.ignore_self_loops).
bool is_feedback_vertex_set(const Digraph& g, const std::vector<NodeId>& fvs,
                            MfvsOptions opts = {});

}  // namespace tsyn::graph
