// tsyn command-line driver.
//
//   tsyn_cli synth <file.cdfg|bench:NAME> [options]   synthesize + report
//   tsyn_cli analyze <file.cdfg|bench:NAME>           behavioral analysis
//   tsyn_cli bist <file.cdfg|bench:NAME> [options]    self-testable synthesis
//   tsyn_cli atpg <file.cdfg|bench:NAME> [options]    full-scan ATPG +
//                                                     test-set compaction
//   tsyn_cli report <file.cdfg|bench:NAME> [options]  atpg run with the
//                                                     fault ledger on ->
//                                                     JSON/HTML run report
//   tsyn_cli explain <file.cdfg|bench:NAME> [options] trace faults back
//                                                     through the provenance
//                                                     map: gate -> RTL
//                                                     component -> CDFG op
//   tsyn_cli sweep <manifest.json> [options]          campaign orchestrator:
//                                                     run the manifest's
//                                                     design x config grid
//                                                     with stage memoization
//                                                     (see docs/sweep.md)
//   tsyn_cli history <dir> [cmd] [options]            persistent cross-run
//                                                     history store: trend /
//                                                     diff / outliers /
//                                                     ingest / HTML dashboard
//                                                     (see docs/history.md)
//   tsyn_cli serve [options]                          standalone observability
//                                                     daemon: HTTP endpoint
//                                                     only, runs until GET
//                                                     /quitz or SIGINT/TERM
//   tsyn_cli list                                     list built-in benchmarks
//
// Options accept both `--opt value` and `--opt=value`.
//
// Exit codes (uniform across commands): 0 success, 1 runtime failure
// (unreadable input, engine error, failed sweep jobs, baseline mismatch),
// 2 usage error (unknown command/option/enum value, malformed flag).
//
// Common options:
//   --alu N --mul N        FU allocation (default 2/2)
//   --steps N              time-constrained schedule length
//   --width N              datapath bit width override in reports
//   --trace FILE           write a Chrome trace_event JSON of the run
//                          (- for stdout; load in chrome://tracing)
//   --metrics FILE         write the metrics-registry JSON run report
//                          (- for stdout; the human report moves to stderr
//                          so stdout stays machine-parseable)
//   --heartbeat FILE[:MS]  stream live JSONL heartbeats (progress, ETA,
//                          metric snapshot) every MS ms (default 250;
//                          - for stderr)
//   --profile FILE         wall-clock sampling profiler over the live span
//                          stacks; writes collapsed-stack (flamegraph)
//                          text and folds a top-N self-time table into
//                          report JSON/HTML (- for stdout)
//   --progress             live single-line progress view on stderr
//   --watchdog MS          emit a stall diagnostic (per-thread span
//                          stacks, progress deltas) to the heartbeat
//                          stream when no progress for MS ms
//   --log-level LEVEL      error|warn|info|debug (default warn)
//   --serve [ADDR:]PORT    expose the live observability endpoint while the
//                          command runs: /metrics (Prometheus), /progress,
//                          /jobs, /profile?seconds=N, /healthz, /readyz,
//                          and an HTML dashboard at / (PORT 0 = ephemeral;
//                          the bound "serving on ADDR:PORT" line goes to
//                          stderr; see docs/observability.md)
// synth options:
//   --scan MODE            none|mfvs|loopcut|boundary|interior (default none)
//   --loop-avoid           use the simultaneous scheduler/assigner of [33]
//   --verilog FILE         write the design as Verilog (- for stdout)
// bist options:
//   --arch A               conventional|avra|tfb|xtfb|share (default tfb)
// atpg/report options:
//   --compact MODE         off|static|dynamic (default off; report: static)
//   --xfill MODE           random|0|1|adjacent (default random)
//   --width N              gate-level expansion bit width (default 4)
// report options:
//   --out FILE             report JSON path (default report.json, - stdout)
//   --html FILE            also render the self-contained HTML page
//   --dot-rtl FILE         datapath DOT with per-component coverage heatmap
//   --dot-cdfg FILE        CDFG DOT with per-operation coverage heatmap
// explain options (defaults to every undetected/aborted fault):
//   --fault N/P/S          one fault: node N, pin P (-1 = output), stuck-at S
//   --undetected           explain all undetected + aborted faults (default)
// sweep options (see docs/sweep.md for the manifest schema):
//   --out-dir DIR          results directory (default results/): per-job
//                          reports, journal.jsonl, index.json, sweep_stats
//   --threads N            job-level worker threads (default: pool width)
//   --resume               consult an existing journal: skip verified
//                          completed jobs, run only the remainder
//   --max-jobs N           stop cleanly after N jobs (kill/resume testing)
//   --baseline FILE        compare the final index.json against this
//                          checked-in baseline (timing-stripped); exit 1
//                          on any difference
//   --timeline FILE        export a Chrome trace_event job timeline (one
//                          track per pool worker slot, one span per job
//                          with stage sub-spans + cache annotations)
//   --history DIR          on completion, ingest this sweep into the
//                          persistent run-history store at DIR and echo
//                          its verdicts into sweep_stats.json
// history subcommands (DIR is the store directory; see docs/history.md):
//   trend                  every key's series across runs (--key SUBSTR to
//                          filter, --json for machine output)
//   diff [BASE [NEW]]      bench_diff two runs ("prev" vs "latest" by
//                          default; refs: latest|prev|ordinal|id prefix);
//                          exit 1 on regression
//   outliers               robust-MAD anomaly scan (--last N window,
//                          --json, --gate = exit 1 on gating outliers)
//   ingest FILE            add a sweep index.json or a schema-1 run report
//                          to the store
//   --html FILE            render the fleet dashboard (any subcommand, or
//                          alone)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bist/bist_assign.h"
#include "campaign/manifest.h"
#include "campaign/sweep.h"
#include "bist/sessions.h"
#include "bist/share.h"
#include "bist/test_registers.h"
#include "bist/tfb.h"
#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "cdfg/loops.h"
#include "cdfg/parser.h"
#include "compaction/compaction.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/atpg_seq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/scoap.h"
#include "hls/synthesis.h"
#include "observe/bench_diff.h"
#include "observe/history.h"
#include "observe/ledger.h"
#include "observe/provenance.h"
#include "observe/report.h"
#include "observe/scoap_attr.h"
#include "rtl/area.h"
#include "rtl/dot.h"
#include "rtl/sgraph.h"
#include "rtl/verilog.h"
#include "testability/behavior_analysis.h"
#include "testability/loop_avoid.h"
#include "testability/scan_select.h"
#include "observe/profile.h"
#include "observe/serve.h"
#include "util/httpd.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/trace.h"

/// Writes `text` to `path`, with "-" meaning stdout (defined below main's
/// helpers; declared here so commands can emit artifacts).
bool write_output(const std::string& path, const std::string& text);

namespace {

using namespace tsyn;

/// Human-readable report stream. Normally stdout; redirected to stderr when
/// --metrics - or --trace - claims stdout for machine-readable JSON.
FILE* g_report = stdout;

/// Set while --profile is active, so cmd_report can fold the top self-time
/// table into the run report.
observe::Profiler* g_profiler = nullptr;

/// Set while --serve is active (or the serve command runs), so the
/// crash-flush path can take the endpoint down with the process.
observe::ObservabilityServer* g_server = nullptr;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: tsyn_cli <synth|analyze|bist|atpg|report|explain|sweep"
               "|history|serve|list> <file.cdfg|bench:NAME|manifest.json"
               "|store-dir> [options]\n"
               "run with no arguments for the option list in the source "
               "header.\n");
  std::exit(2);
}

cdfg::Cdfg load_behavior(const std::string& spec) {
  if (spec.rfind("bench:", 0) == 0) {
    const std::string name = spec.substr(6);
    for (cdfg::Cdfg& g : cdfg::standard_benchmarks())
      if (g.name() == name) return std::move(g);
    usage(("unknown benchmark: " + name).c_str());
  }
  std::ifstream in(spec);
  // A missing/unreadable file is a runtime failure (exit 1), not a usage
  // error: the invocation was well-formed, the environment let it down.
  if (!in) throw std::runtime_error("cannot open " + spec);
  std::stringstream buf;
  buf << in.rdbuf();
  return cdfg::parse_cdfg(buf.str());
}

struct Args {
  std::string command;
  std::string behavior;
  int alu = 2;
  int mul = 2;
  int steps = 0;
  std::string scan = "none";
  bool loop_avoid = false;
  std::string verilog;
  std::string arch = "tfb";
  std::string trace;
  std::string metrics;
  /// Empty = per-command default: "off" for atpg, "static" for report
  /// (a report without compaction phases has nothing to waterfall).
  std::string compact;
  std::string xfill = "random";
  int width = 4;
  std::string out = "report.json";
  std::string html;
  std::string dot_rtl;
  std::string dot_cdfg;
  /// explain: one fault as "node/pin/sa" (empty = --undetected behavior).
  std::string fault;
  bool undetected = false;
  // Live telemetry.
  std::string heartbeat;       ///< JSONL stream path ("-" = stderr)
  int heartbeat_ms = 250;      ///< from the :MS suffix of --heartbeat
  std::string profile;         ///< collapsed-stack output path
  bool progress = false;       ///< single-line TTY progress view
  long watchdog_ms = 0;        ///< 0 = stall watchdog off
  // Observability endpoint (--serve, and the serve command's defaults).
  bool serve = false;
  std::string serve_addr = "127.0.0.1";
  int serve_port = 0;          ///< 0 = kernel-assigned ephemeral port
  // sweep.
  std::string out_dir = "results";
  int threads = 0;             ///< 0 = shared pool width
  bool resume = false;
  int max_jobs = 0;            ///< 0 = whole grid
  std::string baseline;        ///< index.json baseline to gate against
  std::string timeline;        ///< Chrome trace_event job timeline path
  std::string history;         ///< run-history store dir to ingest into
  // history command.
  std::vector<std::string> extras;  ///< positionals after DIR (subcommand...)
  std::string key_filter;      ///< --key: trend series substring filter
  int last_n = 0;              ///< --last: outlier cross-run window (0 = default)
  bool json_out = false;       ///< --json: machine output for trend/outliers
  bool gate = false;           ///< --gate: exit 1 on gating outliers
  bool no_time = false;        ///< --no-time: skip wall_ms in history diff
};

/// Strict numeric option parsing: the whole value must be an integer.
/// std::stoi alone would accept "4x" and abort the process (uncaught
/// std::invalid_argument) on "x" — both are usage errors, exit 2.
long int_arg(const std::string& opt, const std::string& v) {
  std::size_t used = 0;
  long n = 0;
  try {
    n = std::stol(v, &used);
  } catch (const std::exception&) {
    usage((opt + " expects an integer (got \"" + v + "\")").c_str());
  }
  if (used != v.size())
    usage((opt + " expects an integer (got \"" + v + "\")").c_str());
  return n;
}

/// Splits a --heartbeat value "PATH[:MS]" into path and interval. The
/// suffix is an interval only when nonempty and all digits, so plain
/// paths containing ':' stay intact.
void parse_heartbeat_value(const std::string& v, Args* a) {
  const std::size_t colon = v.rfind(':');
  if (colon != std::string::npos && colon + 1 < v.size()) {
    const std::string suffix = v.substr(colon + 1);
    if (std::all_of(suffix.begin(), suffix.end(),
                    [](unsigned char c) { return std::isdigit(c); })) {
      a->heartbeat = v.substr(0, colon);
      a->heartbeat_ms = static_cast<int>(int_arg("--heartbeat :MS", suffix));
      if (a->heartbeat_ms < 1) usage("--heartbeat interval must be >= 1 ms");
      return;
    }
  }
  a->heartbeat = v;
}

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) usage();
  a.command = argv[1];
  if (a.command == "list") {
    // `list` takes nothing; trailing arguments used to be silently
    // ignored, masking typos like `tsyn_cli list --arch tfb`.
    if (argc > 2)
      usage(("list takes no arguments (got: " + std::string(argv[2]) + ")")
                .c_str());
    return a;
  }
  int first_opt = 3;
  if (a.command == "serve") {
    // The standalone daemon takes no behavior argument — just options.
    first_opt = 2;
    a.serve = true;
  } else {
    if (argc < 3) usage("missing behavior argument");
    a.behavior = argv[2];
  }
  for (int i = first_opt; i < argc; ++i) {
    std::string opt = argv[i];
    // `history` is the one command with trailing positionals (subcommand
    // plus its arguments); everything else treats bare words as typos.
    if (a.command == "history" && (opt.empty() || opt[0] != '-')) {
      a.extras.push_back(opt);
      continue;
    }
    // `--opt=value` is equivalent to `--opt value`.
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = opt.find('='); eq != std::string::npos) {
      inline_value = opt.substr(eq + 1);
      opt = opt.substr(0, eq);
      has_inline = true;
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage((opt + " needs a value").c_str());
      return argv[++i];
    };
    if (opt == "--alu") a.alu = static_cast<int>(int_arg(opt, value()));
    else if (opt == "--mul") a.mul = static_cast<int>(int_arg(opt, value()));
    else if (opt == "--steps") a.steps = static_cast<int>(int_arg(opt, value()));
    else if (opt == "--scan") a.scan = value();
    else if (opt == "--loop-avoid") {
      if (has_inline) usage("--loop-avoid takes no value");
      a.loop_avoid = true;
    }
    else if (opt == "--verilog") a.verilog = value();
    else if (opt == "--arch") a.arch = value();
    else if (opt == "--trace") a.trace = value();
    else if (opt == "--metrics") a.metrics = value();
    else if (opt == "--compact") a.compact = value();
    else if (opt == "--xfill") a.xfill = value();
    else if (opt == "--width") a.width = static_cast<int>(int_arg(opt, value()));
    else if (opt == "--out") a.out = value();
    else if (opt == "--html") a.html = value();
    else if (opt == "--dot-rtl") a.dot_rtl = value();
    else if (opt == "--dot-cdfg") a.dot_cdfg = value();
    else if (opt == "--heartbeat") parse_heartbeat_value(value(), &a);
    else if (opt == "--profile") a.profile = value();
    else if (opt == "--progress") {
      if (has_inline) usage("--progress takes no value");
      a.progress = true;
    }
    else if (opt == "--watchdog") {
      a.watchdog_ms = int_arg(opt, value());
      if (a.watchdog_ms < 1) usage("--watchdog expects a window in ms");
    }
    else if (opt == "--serve") {
      // "[ADDR:]PORT". The port goes through the shared strict-int parse
      // (same exit-2 contract as every numeric flag); the address
      // through the same literal validation the server binds with.
      const std::string v = value();
      std::string addr = "127.0.0.1";
      std::string port_part = v;
      if (const std::size_t colon = v.rfind(':');
          colon != std::string::npos) {
        addr = v.substr(0, colon);
        port_part = v.substr(colon + 1);
      }
      const long port = int_arg("--serve [ADDR:]PORT", port_part);
      if (port < 0 || port > 65535)
        usage("--serve port must be in [0, 65535] (0 = ephemeral)");
      if (!util::parse_serve_spec(addr + ":" + std::to_string(port),
                                  &a.serve_addr, &a.serve_port))
        usage(("--serve: bad listen address \"" + addr +
               "\" (IPv4 literal expected)")
                  .c_str());
      a.serve = true;
    }
    else if (opt == "--fault") a.fault = value();
    else if (opt == "--out-dir") a.out_dir = value();
    else if (opt == "--threads") {
      a.threads = static_cast<int>(int_arg(opt, value()));
      if (a.threads < 0) usage("--threads must be >= 0");
    }
    else if (opt == "--resume") {
      if (has_inline) usage("--resume takes no value");
      a.resume = true;
    }
    else if (opt == "--max-jobs") {
      a.max_jobs = static_cast<int>(int_arg(opt, value()));
      if (a.max_jobs < 0) usage("--max-jobs must be >= 0");
    }
    else if (opt == "--baseline") a.baseline = value();
    else if (opt == "--timeline") a.timeline = value();
    else if (opt == "--history") a.history = value();
    else if (opt == "--key") a.key_filter = value();
    else if (opt == "--last") {
      a.last_n = static_cast<int>(int_arg(opt, value()));
      if (a.last_n < 1) usage("--last must be >= 1");
    }
    else if (opt == "--json") {
      if (has_inline) usage("--json takes no value");
      a.json_out = true;
    }
    else if (opt == "--gate") {
      if (has_inline) usage("--gate takes no value");
      a.gate = true;
    }
    else if (opt == "--no-time") {
      if (has_inline) usage("--no-time takes no value");
      a.no_time = true;
    }
    else if (opt == "--undetected") {
      if (has_inline) usage("--undetected takes no value");
      a.undetected = true;
    }
    else if (opt == "--log-level") {
      util::LogLevel level;
      if (!util::parse_log_level(value(), &level))
        usage("--log-level expects error|warn|info|debug");
      util::set_log_level(level);
    }
    else usage(("unknown option: " + opt).c_str());
  }
  return a;
}

std::vector<cdfg::VarId> select_scan(const cdfg::Cdfg& g,
                                     const std::string& mode) {
  if (mode == "none") return {};
  if (mode == "mfvs") return testability::select_scan_vars_mfvs(g);
  if (mode == "loopcut") return testability::select_scan_vars_loopcut(g);
  if (mode == "boundary") return testability::select_scan_vars_boundary(g);
  if (mode == "interior") return testability::select_scan_vars_interior(g);
  usage(("unknown scan mode: " + mode).c_str());
}

void report_design(const cdfg::Cdfg& g, const hls::Schedule& s,
                   const hls::Binding& b, const rtl::Datapath& dp) {
  const rtl::LoopStats loops = rtl::loop_stats(dp);
  std::fprintf(g_report, "behavior  : %s (%d ops, %zu states)\n", g.name().c_str(),
              g.num_ops(), g.states().size());
  std::fprintf(g_report, "schedule  : %d control steps\n", s.num_steps);
  std::fprintf(g_report, "resources : %d FUs, %d registers, %d mux2\n", b.num_fus(),
              b.num_regs, dp.mux2_count());
  std::fprintf(g_report, "area      : %.0f GE (test overhead %.1f%%)\n",
              rtl::datapath_area(dp), 100 * rtl::test_area_overhead(dp));
  std::fprintf(g_report, "S-graph   : %d self-loops, %d assignment loops, %d CDFG "
              "loops\n",
              loops.self_loops, loops.assignment_loops, loops.cdfg_loops);
  std::fprintf(g_report, "scan      : %zu scan registers\n",
              dp.scan_registers().size());
}

/// Bounded gate-level quick-look for the synth run report: expands the
/// synthesized datapath at a narrow width, fault-simulates a short random
/// budget, and runs a capped ATPG campaign. The point is a fault-coverage
/// sanity line plus populated fault-sim/ATPG sections in --metrics/--trace
/// output, not a definitive coverage number — the caps keep it around a
/// second even on the larger benchmarks.
void gatelevel_quicklook(const rtl::Datapath& dp) {
  TSYN_SPAN("gl.quicklook");
  gl::ExpandOptions eo;
  eo.width_override = 4;
  const gl::ExpandedDesign ed = gl::expand_datapath(dp, eo);
  const gl::Netlist& n = ed.netlist;
  std::vector<gl::Fault> faults = gl::enumerate_faults(n);

  util::Rng rng(0xC0FFEE);
  auto random_frame = [&]() {
    std::vector<gl::Bits> frame(n.primary_inputs().size());
    for (gl::Bits& b : frame) b = gl::Bits::known(rng.next_u64());
    return frame;
  };

  if (ed.sequential()) {
    // 64 lanes x 8 frames of random vectors through the event-driven
    // sequential engine, then bounded sequential ATPG on a fault slice.
    std::vector<std::vector<gl::Bits>> frames;
    for (int f = 0; f < 8; ++f) frames.push_back(random_frame());
    std::vector<gl::Fault> sim_faults = faults;
    if (sim_faults.size() > 512) sim_faults.resize(512);
    const std::vector<bool> det = gl::sequential_fault_sim(n, frames, sim_faults);
    const long hits =
        std::count(det.begin(), det.end(), true);
    std::vector<gl::Fault> atpg_faults = faults;
    if (atpg_faults.size() > 48) atpg_faults.resize(48);
    const gl::SeqAtpgCampaign c = gl::run_sequential_atpg(
        n, atpg_faults, /*max_frames=*/3, /*backtrack_limit=*/1000);
    std::fprintf(g_report,
                 "gatelevel : %d gates, %zu flops (width 4); random 8-frame "
                 "sim detects %ld/%zu faults\n",
                 n.gate_count(), n.flops().size(), hits, sim_faults.size());
    std::fprintf(g_report,
                 "atpg      : seq, %zu-fault slice: %ld detected, %ld "
                 "untestable, %ld aborted (%.1f%% coverage)\n",
                 atpg_faults.size(), c.detected, c.untestable, c.aborted,
                 100 * c.fault_coverage);
  } else {
    // Fully scanned (or purely combinational): 8 random 64-lane blocks,
    // then a capped PODEM campaign.
    std::vector<std::vector<gl::Bits>> blocks;
    for (int bl = 0; bl < 8; ++bl) blocks.push_back(random_frame());
    std::vector<bool> det;
    gl::fault_coverage(n, blocks, faults, &det);
    const long hits = std::count(det.begin(), det.end(), true);
    std::vector<gl::Fault> atpg_faults = faults;
    if (atpg_faults.size() > 256) atpg_faults.resize(256);
    const gl::AtpgCampaign c =
        gl::run_combinational_atpg(n, atpg_faults, /*backtrack_limit=*/2000);
    std::fprintf(g_report,
                 "gatelevel : %d gates, comb (width 4); random 512-vector "
                 "sim detects %ld/%zu faults\n",
                 n.gate_count(), hits, faults.size());
    std::fprintf(g_report,
                 "atpg      : comb, %zu-fault slice: %zu tests, %.1f%% "
                 "coverage, %.1f%% efficiency\n",
                 atpg_faults.size(), c.tests.size(), 100 * c.fault_coverage,
                 100 * c.fault_efficiency);
  }
}

int cmd_synth(const Args& a) {
  TSYN_SPAN("cli.synth");
  const cdfg::Cdfg g = load_behavior(a.behavior);
  const hls::Resources res{{cdfg::FuType::kAlu, a.alu},
                           {cdfg::FuType::kMultiplier, a.mul}};
  const std::vector<cdfg::VarId> scan_vars = select_scan(g, a.scan);

  hls::Schedule schedule;
  hls::Binding binding;
  if (a.loop_avoid) {
    testability::LoopAvoidOptions opts;
    opts.resources = res;
    opts.num_steps = a.steps;
    opts.scan_vars = scan_vars;
    testability::LoopAvoidResult r =
        testability::loop_avoiding_synthesis(g, opts);
    schedule = std::move(r.schedule);
    binding = std::move(r.binding);
  } else {
    hls::SynthesisOptions opts;
    opts.resources = res;
    opts.num_steps = a.steps;
    hls::Synthesis r = hls::synthesize(g, opts);
    schedule = std::move(r.schedule);
    binding = std::move(r.binding);
  }
  hls::RtlDesign design = hls::build_rtl(g, schedule, binding);
  if (!scan_vars.empty())
    testability::apply_scan(g, binding, scan_vars, design.datapath);
  report_design(g, schedule, binding, design.datapath);
  gatelevel_quicklook(design.datapath);

  if (!a.verilog.empty()) {
    const std::string v =
        rtl::emit_verilog(design.datapath, design.controller);
    if (a.verilog == "-") {
      std::fputs(v.c_str(), stdout);
    } else {
      std::ofstream out(a.verilog);
      out << v;
      std::fprintf(g_report, "verilog   : written to %s (%zu bytes)\n",
                  a.verilog.c_str(), v.size());
    }
  }
  return 0;
}

int cmd_analyze(const Args& a) {
  TSYN_SPAN("cli.analyze");
  const cdfg::Cdfg g = load_behavior(a.behavior);
  std::fprintf(g_report, "%s\n", g.to_string().c_str());
  const auto loops = cdfg::cdfg_loops(g);
  std::fprintf(g_report, "CDFG loops: %zu\n", loops.size());
  const testability::BehaviorTestability t =
      testability::analyze_behavior(g);
  std::fprintf(g_report, 
      "controllable: %d fully, %d partially, %d not\n"
      "observable  : %d fully, %d partially, %d not\n",
      t.count_ctrl(testability::CtrlClass::kControllable),
      t.count_ctrl(testability::CtrlClass::kPartial),
      t.count_ctrl(testability::CtrlClass::kUncontrollable),
      t.count_obs(testability::ObsClass::kObservable),
      t.count_obs(testability::ObsClass::kPartial),
      t.count_obs(testability::ObsClass::kUnobservable));
  for (const std::string mode : {"mfvs", "loopcut", "boundary", "interior"}) {
    const auto vars = select_scan(g, mode);
    std::fprintf(g_report, "scan selection %-9s: %zu variables\n", mode.c_str(),
                vars.size());
  }
  return 0;
}

int cmd_bist(const Args& a) {
  TSYN_SPAN("cli.bist");
  const cdfg::Cdfg g = load_behavior(a.behavior);
  const hls::Resources res{{cdfg::FuType::kAlu, a.alu},
                           {cdfg::FuType::kMultiplier, a.mul}};
  const hls::Schedule s = hls::list_schedule(g, res);

  hls::Binding binding;
  if (a.arch == "tfb") {
    bist::TfbResult r = bist::tfb_synthesis(g, s);
    binding = std::move(r.binding);
    std::fprintf(g_report, "architecture: TFB [31] (%d TFBs + %d input regs)\n",
                r.num_tfbs, r.num_input_regs);
  } else if (a.arch == "xtfb") {
    bist::XtfbResult r = bist::xtfb_synthesis(g, s);
    binding = std::move(r.binding);
    std::fprintf(g_report, "architecture: XTFB [19] (%d ALUs)\n", r.num_alus);
  } else if (a.arch == "avra") {
    binding = hls::make_binding(g, s);
    hls::rebind_registers(g, binding,
                          bist::bist_aware_register_assignment(g, binding));
    std::fprintf(g_report, "architecture: adjacency-aware registers [3]\n");
  } else if (a.arch == "share") {
    binding = hls::make_binding(g, s);
    const bist::ShareResult r = bist::sharing_register_assignment(g, binding);
    hls::rebind_registers(g, binding, r.reg_of_lifetime);
    std::fprintf(g_report, "architecture: TPGR/SR sharing [32]\n");
  } else if (a.arch == "conventional") {
    binding = hls::make_binding(g, s);
    std::fprintf(g_report, "architecture: conventional binding\n");
  } else {
    usage(("unknown BIST architecture: " + a.arch).c_str());
  }

  hls::RtlDesign design = hls::build_rtl(g, s, binding);
  const int cbilbos = bist::configure_bist_conventional(design.datapath);
  const bist::TestRegCounts counts =
      bist::count_test_registers(design.datapath);
  const bist::SessionAnalysis sessions =
      bist::schedule_test_sessions(g, binding);
  report_design(g, s, binding, design.datapath);
  std::fprintf(g_report, "BIST      : %d TPGR, %d SR, %d BILBO, %d CBILBO\n",
              counts.tpgr, counts.sr, counts.bilbo, cbilbos);
  std::fprintf(g_report, "sessions  : %d (%d conflicts over %d modules)\n",
              sessions.num_sessions, sessions.num_conflicts,
              sessions.num_modules);
  return 0;
}

int cmd_atpg(const Args& a) {
  TSYN_SPAN("cli.atpg");
  compaction::CompactionOptions copts;
  const std::string compact = a.compact.empty() ? "off" : a.compact;
  if (!compaction::parse_compact_mode(compact, &copts.mode))
    usage("--compact expects off|static|dynamic");
  if (!compaction::parse_xfill(a.xfill, &copts.xfill))
    usage("--xfill expects random|0|1|adjacent");
  if (a.width < 1) usage("--width must be >= 1");

  // Full-scan flow: synthesize, scan every register, expand to a
  // combinational netlist, then generate + compact the test set.
  const cdfg::Cdfg g = load_behavior(a.behavior);
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, a.alu},
                                  {cdfg::FuType::kMultiplier, a.mul}};
  opts.num_steps = a.steps;
  hls::Synthesis syn = hls::synthesize(g, opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions eo;
  eo.width_override = a.width;
  const gl::Netlist n = gl::expand_datapath(dp, eo).netlist;
  const std::vector<gl::Fault> faults = gl::enumerate_faults(n);

  const compaction::CompactedCampaign c =
      compaction::run_compacted_atpg(n, faults, copts);

  const std::size_t pis = n.primary_inputs().size();
  std::fprintf(g_report,
               "gatelevel : %d gates, %zu PIs (full scan, width %d), "
               "%zu faults\n",
               n.gate_count(), pis, a.width, faults.size());
  std::fprintf(g_report,
               "atpg      : %ld cubes, %.2f%% coverage, %.2f%% efficiency\n",
               c.stats.cubes_generated, 100 * c.campaign.fault_coverage,
               100 * c.campaign.fault_efficiency);
  std::fprintf(g_report,
               "compaction: mode %s, fill %s; %ld secondary merged, "
               "%ld -> %ld cubes, %ld pruned, %ld top-up\n",
               compaction::to_string(copts.mode),
               compaction::to_string(copts.xfill), c.stats.secondary_merged,
               c.stats.cubes_generated, c.stats.cubes_after_merge,
               c.stats.patterns_pruned, c.stats.topup_patterns);
  std::fprintf(g_report,
               "patterns  : %zu shipped vs %ld baseline (%.1f%% reduction), "
               "%.2f%% coverage\n",
               c.patterns.size(), c.baseline_patterns, 100 * c.reduction(),
               100 * c.pattern_coverage);
  std::fprintf(g_report, "data vol  : %ld bits (%zu patterns x %zu PI bits)\n",
               c.test_data_bits(), c.patterns.size(), pis);
  return 0;
}

/// The shared full-scan front half of `report` and `explain`: synthesize,
/// scan every register, expand with provenance recording, annotate the op
/// labels, enumerate the collapsed faults.
struct FullScanDesign {
  cdfg::Cdfg g;
  hls::Synthesis syn;
  rtl::Datapath dp;
  gl::ExpandedDesign ed;
  std::vector<gl::Fault> faults;
};

FullScanDesign build_full_scan(const Args& a) {
  FullScanDesign d;
  d.g = load_behavior(a.behavior);
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, a.alu},
                                  {cdfg::FuType::kMultiplier, a.mul}};
  opts.num_steps = a.steps;
  d.syn = hls::synthesize(d.g, opts);
  d.dp = d.syn.rtl.datapath;
  for (auto& reg : d.dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions eo;
  eo.width_override = a.width;
  d.ed = gl::expand_datapath(d.dp, eo);
  observe::annotate_ops(d.ed.provenance, d.g, &d.syn.schedule.step_of_op);
  d.faults = gl::enumerate_faults(d.ed.netlist);
  return d;
}

compaction::CompactionOptions parse_compaction(const Args& a) {
  compaction::CompactionOptions copts;
  const std::string compact = a.compact.empty() ? "static" : a.compact;
  if (!compaction::parse_compact_mode(compact, &copts.mode))
    usage("--compact expects off|static|dynamic");
  if (!compaction::parse_xfill(a.xfill, &copts.xfill))
    usage("--xfill expects random|0|1|adjacent");
  if (a.width < 1) usage("--width must be >= 1");
  return copts;
}

/// The compacted ATPG campaign with the fault ledger on, plus a final
/// detection-matrix grading of the shipped set under its own phase.
compaction::CompactedCampaign run_ledgered_campaign(
    const gl::Netlist& n, const std::vector<gl::Fault>& faults,
    const compaction::CompactionOptions& copts,
    observe::LedgerSnapshot* snap) {
  observe::ledger_reset();
  observe::ledger_enable();
  compaction::CompactedCampaign c =
      compaction::run_compacted_atpg(n, faults, copts);
  {
    // Grade the shipped set once more with the matrix grader so the ledger
    // carries the final n-detect profile under its own phase.
    observe::LedgerPhase phase("ship.ndetect");
    (void)compaction::detection_matrix(n, c.patterns, faults);
  }
  observe::ledger_disable();
  *snap = observe::ledger_snapshot();
  return c;
}

/// The atpg flow with the fault-lifecycle ledger enabled, consolidated
/// into a single JSON artifact (and optionally a self-contained HTML
/// page): design numbers, campaign results, per-fault journeys, coverage
/// waterfalls, SCOAP effort attribution, provenance coverage attribution,
/// and the metrics registry.
int cmd_report(const Args& a) {
  TSYN_SPAN("cli.report");
  const compaction::CompactionOptions copts = parse_compaction(a);
  FullScanDesign d = build_full_scan(a);
  const gl::Netlist& n = d.ed.netlist;

  observe::RunReport r;
  const compaction::CompactedCampaign c =
      run_ledgered_campaign(n, d.faults, copts, &r.ledger);

  r.title = d.g.name() + " w" + std::to_string(a.width) + " " +
            compaction::to_string(copts.mode);
  r.behavior = a.behavior;
  r.compact_mode = compaction::to_string(copts.mode);
  r.xfill = compaction::to_string(copts.xfill);
  r.width = a.width;
  r.gates = n.gate_count();
  r.pis = static_cast<std::int64_t>(n.primary_inputs().size());
  r.faults = static_cast<std::int64_t>(d.faults.size());
  r.fault_coverage = c.campaign.fault_coverage;
  r.fault_efficiency = c.campaign.fault_efficiency;
  r.cubes = c.stats.cubes_generated;
  r.patterns = static_cast<std::int64_t>(c.patterns.size());
  r.baseline_patterns = c.baseline_patterns;
  r.scoap = observe::attribute_scoap(n, r.ledger, /*top_k=*/10);
  r.provenance = std::move(d.ed.provenance);
  r.attribution = observe::attribute_coverage(r.provenance, r.ledger);
  if (g_profiler) {
    r.profile_samples = g_profiler->samples();
    r.profile_top = g_profiler->top_self(15);
  }
  // Metrics last, so the attribution join's gauge/histogram are included.
  r.metrics_json = util::metrics().to_json();

  if (!write_output(a.out, observe::report_to_json(r) + "\n")) {
    std::fprintf(stderr, "error: cannot write report to %s\n", a.out.c_str());
    return 1;
  }
  if (a.out != "-")
    std::fprintf(g_report, "report    : written to %s (%zu journeys, %zu "
                 "waterfalls)\n",
                 a.out.c_str(), r.ledger.journeys.size(),
                 r.ledger.waterfalls.size());
  if (!a.html.empty()) {
    if (!write_output(a.html, observe::report_to_html(r))) {
      std::fprintf(stderr, "error: cannot write HTML report to %s\n",
                   a.html.c_str());
      return 1;
    }
    if (a.html != "-")
      std::fprintf(g_report, "html      : written to %s\n", a.html.c_str());
  }
  if (!a.dot_rtl.empty()) {
    rtl::DatapathHeat heat;
    heat.reg = observe::register_heat(r.provenance, r.attribution,
                                      d.dp.num_regs());
    heat.fu = observe::fu_heat(r.provenance, r.attribution, d.dp.num_fus());
    if (!write_output(a.dot_rtl, rtl::datapath_to_dot(d.dp, &heat))) {
      std::fprintf(stderr, "error: cannot write %s\n", a.dot_rtl.c_str());
      return 1;
    }
    if (a.dot_rtl != "-")
      std::fprintf(g_report, "dot-rtl   : heatmap written to %s\n",
                   a.dot_rtl.c_str());
  }
  if (!a.dot_cdfg.empty()) {
    const std::vector<double> heat =
        observe::op_heat(r.provenance, r.attribution, d.g.num_ops());
    if (!write_output(a.dot_cdfg, cdfg::to_dot(d.g, {}, &heat))) {
      std::fprintf(stderr, "error: cannot write %s\n", a.dot_cdfg.c_str());
      return 1;
    }
    if (a.dot_cdfg != "-")
      std::fprintf(g_report, "dot-cdfg  : heatmap written to %s\n",
                   a.dot_cdfg.c_str());
  }
  std::fprintf(g_report,
               "atpg      : %.2f%% coverage, %zu patterns vs %ld baseline\n",
               100 * c.campaign.fault_coverage, c.patterns.size(),
               c.baseline_patterns);
  std::fprintf(g_report,
               "scoap     : spearman(predicted, effort) = %.3f over %zu "
               "targeted faults\n",
               r.scoap.spearman, r.scoap.rows.size());
  const std::size_t worst =
      r.attribution.worst_components.empty()
          ? 0
          : static_cast<std::size_t>(r.attribution.worst_components[0]);
  if (!r.attribution.worst_components.empty())
    std::fprintf(g_report,
                 "provenance: %zu components, worst \"%s\" at %.1f%% "
                 "coverage\n",
                 r.provenance.components.size(),
                 r.provenance.components[worst].name.c_str(),
                 100 * r.attribution.components[worst].coverage());
  return 0;
}

/// Prints one fault's full cross-layer chain: the faulted gate with its
/// SCOAP measures, the ledger journey, the RTL component whose expansion
/// created the gate, and the CDFG operations bound onto that component
/// (the behavioral source lines a detected defect would corrupt).
void explain_fault(const FullScanDesign& d, const gl::Scoap& scoap,
                   const observe::ProvenanceAttribution& attr,
                   const observe::FaultJourney& j) {
  const gl::Netlist& n = d.ed.netlist;
  const observe::ProvenanceMap& map = d.ed.provenance;
  const gl::Fault f{j.key.node, j.key.pin, j.key.sa1 != 0};
  std::fprintf(g_report, "fault %d/%d/sa%d: %s\n", j.key.node, j.key.pin,
               static_cast<int>(j.key.sa1), gl::describe(n, f).c_str());
  std::fprintf(g_report,
               "  journey : %s (targeted %d times, %ld decisions, %ld "
               "backtracks, n-detect %ld)\n",
               j.status.c_str(), j.targets,
               static_cast<long>(j.decisions), static_cast<long>(j.backtracks),
               static_cast<long>(j.n_detect));
  if (j.key.node >= 0 && j.key.node < static_cast<int>(scoap.cc0.size()))
    std::fprintf(g_report, "  scoap   : cc0=%d cc1=%d co=%d\n",
                 scoap.cc0[static_cast<std::size_t>(j.key.node)],
                 scoap.cc1[static_cast<std::size_t>(j.key.node)],
                 scoap.co[static_cast<std::size_t>(j.key.node)]);
  const int ci = map.component_of(j.key.node);
  if (ci < 0) {
    std::fprintf(g_report, "  origin  : (unattributed node)\n");
    return;
  }
  const observe::ProvComponent& comp =
      map.components[static_cast<std::size_t>(ci)];
  const observe::ComponentCoverage& cov =
      attr.components[static_cast<std::size_t>(ci)];
  std::fprintf(g_report,
               "  origin  : %s (%s), component coverage %.1f%% over %ld "
               "faults\n",
               comp.name.c_str(), observe::to_string(comp.kind),
               100 * cov.coverage(), static_cast<long>(cov.faults));
  if (comp.ops.empty()) {
    std::fprintf(g_report, "  ops     : (none — shared control logic)\n");
    return;
  }
  bool first = true;
  for (cdfg::OpId o : comp.ops) {
    std::string label;
    if (o >= 0 && o < static_cast<int>(map.op_label.size()))
      label = map.op_label[static_cast<std::size_t>(o)];
    if (label.empty()) label = "o" + std::to_string(o);
    std::fprintf(g_report, "  %s %s\n", first ? "ops     :" : "         ",
                 label.c_str());
    first = false;
  }
}

/// Runs the report pipeline (without writing artifacts) and prints the
/// gate -> RTL component -> CDFG op chain for the selected faults:
/// --fault N/P/S for one, otherwise every undetected/aborted fault.
int cmd_explain(const Args& a) {
  TSYN_SPAN("cli.explain");
  const compaction::CompactionOptions copts = parse_compaction(a);
  FullScanDesign d = build_full_scan(a);
  const gl::Netlist& n = d.ed.netlist;

  observe::LedgerSnapshot led;
  const compaction::CompactedCampaign c =
      run_ledgered_campaign(n, d.faults, copts, &led);
  const observe::ProvenanceAttribution attr =
      observe::attribute_coverage(d.ed.provenance, led);
  const gl::Scoap scoap = gl::compute_scoap(n);

  std::fprintf(g_report,
               "campaign  : %.2f%% coverage over %zu faults (%ld detected, "
               "%ld dropped, %ld redundant, %ld aborted, %ld undetected)\n",
               100 * c.campaign.fault_coverage, d.faults.size(),
               static_cast<long>(led.detected), static_cast<long>(led.dropped),
               static_cast<long>(led.redundant),
               static_cast<long>(led.aborted),
               static_cast<long>(led.undetected));

  std::vector<const observe::FaultJourney*> picks;
  if (!a.fault.empty()) {
    int node = 0, pin = 0, sa = 0;
    if (std::sscanf(a.fault.c_str(), "%d/%d/%d", &node, &pin, &sa) != 3)
      usage("--fault expects node/pin/sa, e.g. 123/-1/1");
    for (const observe::FaultJourney& j : led.journeys)
      if (j.key.node == node && j.key.pin == pin && j.key.sa1 == (sa != 0))
        picks.push_back(&j);
    if (picks.empty()) {
      std::fprintf(stderr, "error: fault %s is not in the collapsed list\n",
                   a.fault.c_str());
      return 1;
    }
  } else {
    for (const observe::FaultJourney& j : led.journeys)
      if (j.status == "undetected" || j.status == "aborted")
        picks.push_back(&j);
    if (picks.empty()) {
      std::fprintf(g_report,
                   "explain   : nothing to explain — every fault detected, "
                   "dropped, or proven redundant\n");
      return 0;
    }
  }
  constexpr std::size_t kMaxExplained = 25;
  const std::size_t shown = std::min(picks.size(), kMaxExplained);
  for (std::size_t i = 0; i < shown; ++i)
    explain_fault(d, scoap, attr, *picks[i]);
  if (shown < picks.size())
    std::fprintf(g_report, "... and %zu more (use --fault N/P/S to drill in)\n",
                 picks.size() - shown);
  return 0;
}

}  // namespace

/// Best-effort creation of `path`'s missing parent directories, shared by
/// every file-writing output flag (--trace, --timeline, ...). The open
/// that follows reports the real failure if this did not help.
void ensure_parent_dirs(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
}

/// Writes `text` to `path`, with "-" meaning stdout. Missing parent
/// directories are created, so `--trace out/run/trace.json` works on a
/// fresh checkout. Returns success.
bool write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  ensure_parent_dirs(path);
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// Refuses two output flags aimed at one path — the second write would
/// silently win. Prints the offending pair and returns false. Shared by
/// every command's output-flag set (sweep's --timeline/--history and
/// history's --html included).
bool reject_output_collisions(
    const std::vector<std::pair<const char*, const std::string*>>& outs) {
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (outs[i].second->empty()) continue;
    for (std::size_t j = i + 1; j < outs.size(); ++j) {
      if (*outs[i].second != *outs[j].second) continue;
      std::fprintf(stderr,
                   "error: %s and %s point at the same output (%s); give "
                   "them distinct paths\n",
                   outs[i].first, outs[j].first, outs[i].second->c_str());
      return false;
    }
  }
  return true;
}

int cmd_sweep(const Args& a) {
  std::ifstream in(a.behavior);
  if (!in) throw std::runtime_error("cannot open manifest " + a.behavior);
  std::stringstream buf;
  buf << in.rdbuf();
  const campaign::Manifest m = campaign::parse_manifest(buf.str());

  campaign::SweepOptions opts;
  opts.results_dir = a.out_dir;
  opts.threads = a.threads;
  opts.resume = a.resume;
  opts.max_jobs = a.max_jobs;
  opts.timeline_path = a.timeline;
  opts.history_dir = a.history;
  if (!a.timeline.empty()) ensure_parent_dirs(a.timeline);
  if (!a.history.empty()) ensure_parent_dirs(a.history + "/store.jsonl");
  const campaign::SweepSummary s = campaign::run_sweep(m, opts);

  std::fprintf(g_report,
               "sweep     : %lld jobs (%lld ran, %lld from journal, "
               "%lld failed) in %.1f ms\n",
               static_cast<long long>(s.total()),
               static_cast<long long>(s.ran),
               static_cast<long long>(s.journal_hits),
               static_cast<long long>(s.failed), s.wall_ms);
  std::fprintf(g_report,
               "cache     : parse %lld/%lld, synth %lld/%lld, expand "
               "%lld/%lld (hit/miss)\n",
               static_cast<long long>(s.cache.parse_hits),
               static_cast<long long>(s.cache.parse_misses),
               static_cast<long long>(s.cache.synth_hits),
               static_cast<long long>(s.cache.synth_misses),
               static_cast<long long>(s.cache.expand_hits),
               static_cast<long long>(s.cache.expand_misses));
  int shown = 0;
  for (const campaign::JobResult& r : s.jobs) {
    if (r.status != "failed") continue;
    if (++shown > 5) {
      std::fprintf(g_report, "  ... and %lld more failed jobs\n",
                   static_cast<long long>(s.failed - 5));
      break;
    }
    std::fprintf(g_report, "  failed  : %s: %s\n", r.spec.id.c_str(),
                 r.error.c_str());
  }
  if (!a.timeline.empty())
    std::fprintf(g_report, "timeline  : %s\n", a.timeline.c_str());
  if (!s.complete) {
    std::fprintf(g_report,
                 "index     : not written (--max-jobs stopped the run; "
                 "finish with --resume)\n");
    return 0;  // an early stop was requested, not a failure
  }
  std::fprintf(g_report, "index     : %s/index.json\n", a.out_dir.c_str());
  if (!s.history_run_id.empty())
    std::fprintf(g_report, "history   : run %.12s %s -> %s (%lld run(s))\n",
                 s.history_run_id.c_str(),
                 s.history_added ? "ingested" : "already present",
                 a.history.c_str(),
                 static_cast<long long>(s.history_runs_total));

  if (!a.baseline.empty()) {
    std::ifstream bin(a.baseline);
    if (!bin) throw std::runtime_error("cannot open baseline " + a.baseline);
    std::stringstream bbuf;
    bbuf << bin.rdbuf();
    const std::string got = campaign::strip_timing(campaign::index_to_json(s));
    const std::string want = campaign::strip_timing(bbuf.str());
    if (got != want) {
      // Point at the first diverging line: with deterministic reports any
      // divergence is a real behavior change, not noise.
      std::istringstream ga(got), wa(want);
      std::string gl, wl;
      int line = 1;
      while (std::getline(ga, gl) && std::getline(wa, wl) && gl == wl) ++line;
      std::fprintf(stderr,
                   "error: index.json diverges from baseline %s at line %d\n"
                   "  baseline: %s\n  got     : %s\n",
                   a.baseline.c_str(), line, wl.c_str(), gl.c_str());
      return 1;
    }
    std::fprintf(g_report, "baseline  : match (%s, timing stripped)\n",
                 a.baseline.c_str());
  }
  return s.failed > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// history
// ---------------------------------------------------------------------------

namespace cli_history {

/// Turns a sweep index.json (schema 2) or a schema-1 single-job run report
/// into a HistoryRun, so `history ingest` accepts both artifact kinds the
/// pipeline produces.
observe::HistoryRun run_from_artifact(const util::Json& doc,
                                      const std::string& source) {
  if (!doc.is_object())
    throw std::runtime_error("ingest: " + source + " is not a JSON object");
  observe::HistoryRun r;
  r.source = source;
  const double schema = doc.number_or("schema", -1);
  const util::Json* jobs = doc.find("jobs");
  auto str_or = [](const util::Json& o, const char* key,
                   const std::string& fallback) {
    const util::Json* v = o.find(key);
    return v && v->is_string() ? v->str : fallback;
  };
  if (schema == 2 && jobs && jobs->is_array()) {
    r.manifest = str_or(doc, "manifest", "index");
    for (const util::Json& row : jobs->arr) {
      if (!row.is_object()) continue;
      observe::HistoryEntry e;
      e.job = str_or(row, "case", "");
      if (e.job.empty()) continue;
      e.design = str_or(row, "design", "");
      e.config = str_or(row, "config", "");
      e.scan = str_or(row, "scan", "");
      e.width = static_cast<int>(row.number_or("width", 0));
      e.seed = static_cast<std::uint64_t>(row.number_or("job_seed", 0));
      e.status = str_or(row, "status", "ok");
      e.error = str_or(row, "error", "");
      e.gates = static_cast<std::int64_t>(row.number_or("gates", 0));
      e.faults = static_cast<std::int64_t>(row.number_or("faults", 0));
      e.patterns = static_cast<std::int64_t>(row.number_or("patterns", 0));
      e.cubes = static_cast<std::int64_t>(row.number_or("cubes", 0));
      e.coverage = row.number_or("coverage", 0);
      e.efficiency = row.number_or("efficiency", 0);
      e.wall_ms = row.number_or("wall_ms", 0);
      r.entries.push_back(std::move(e));
    }
    if (r.entries.empty())
      throw std::runtime_error("ingest: " + source + " has no usable jobs");
    return r;
  }
  if (schema == 1) {
    // Schema-1 run report: one job keyed by its title.
    r.manifest = "report";
    observe::HistoryEntry e;
    e.job = str_or(doc, "title", source);
    e.design = str_or(doc, "behavior", "");
    e.width = static_cast<int>(doc.number_or("width", 0));
    e.status = str_or(doc, "status", "ok");
    e.error = str_or(doc, "error", "");
    e.gates = static_cast<std::int64_t>(doc.number_or("gates", 0));
    e.faults = static_cast<std::int64_t>(doc.number_or("faults", 0));
    e.patterns = static_cast<std::int64_t>(doc.number_or("patterns", 0));
    e.cubes = static_cast<std::int64_t>(doc.number_or("cubes", 0));
    e.coverage = doc.number_or("fault_coverage", 0);
    e.efficiency = doc.number_or("fault_efficiency", 0);
    r.entries.push_back(std::move(e));
    return r;
  }
  throw std::runtime_error(
      "ingest: " + source +
      " is neither a sweep index.json (schema 2) nor a run report (schema 1)");
}

int cmd_trend(const observe::History& h, const Args& a) {
  const std::vector<observe::TrendSeries> trend =
      observe::history_trend(h, a.key_filter);
  if (a.json_out) {
    std::string out = "[";
    bool first_s = true;
    for (const observe::TrendSeries& s : trend) {
      out += first_s ? "\n  " : ",\n  ";
      first_s = false;
      out += "{\"job\": \"" + s.job + "\", \"points\": [";
      for (std::size_t i = 0; i < s.points.size(); ++i) {
        const observe::TrendPoint& p = s.points[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"run\": \"%.12s\", \"status\": \"%s\", "
                      "\"coverage\": %.17g, \"wall_ms\": %.17g, "
                      "\"patterns\": %lld}",
                      i ? ", " : "", p.run_id.c_str(), p.status.c_str(),
                      p.coverage, p.wall_ms,
                      static_cast<long long>(p.patterns));
        out += buf;
      }
      out += "]}";
    }
    out += "\n]\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  for (const observe::TrendSeries& s : trend) {
    const observe::TrendPoint& f = s.points.front();
    const observe::TrendPoint& l = s.points.back();
    std::fprintf(g_report,
                 "%-28s %2zu run(s)  coverage %.4f -> %.4f (%+.4f)  "
                 "wall_ms %.1f -> %.1f  patterns %lld -> %lld%s\n",
                 s.job.c_str(), s.points.size(), f.coverage, l.coverage,
                 l.coverage - f.coverage, f.wall_ms, l.wall_ms,
                 static_cast<long long>(f.patterns),
                 static_cast<long long>(l.patterns),
                 l.status == "failed" ? "  [FAILED]" : "");
  }
  std::fprintf(g_report, "trend     : %zu key(s) over %zu run(s)\n",
               trend.size(), h.runs.size());
  return 0;
}

int cmd_diff(const observe::History& h, const Args& a) {
  const std::string base_ref = a.extras.size() > 1 ? a.extras[1] : "prev";
  const std::string new_ref = a.extras.size() > 2 ? a.extras[2] : "latest";
  std::string err;
  const observe::HistoryRun* base = observe::history_resolve(h, base_ref, &err);
  if (!base) throw std::runtime_error("diff: " + err);
  const observe::HistoryRun* fresh = observe::history_resolve(h, new_ref, &err);
  if (!fresh) throw std::runtime_error("diff: " + err);

  observe::BenchDiffOptions opts;
  opts.check_time = !a.no_time;
  const util::Json b = util::Json::parse(observe::history_run_to_bench_json(*base));
  const util::Json f =
      util::Json::parse(observe::history_run_to_bench_json(*fresh));
  const observe::BenchDiffResult res = observe::diff_bench_json(b, f, opts);
  if (!res.schema_ok) {
    std::fprintf(stderr, "history diff: %s\n", res.schema_error.c_str());
    return 2;
  }
  const std::string text = observe::diff_result_to_text(
      res, /*quiet=*/false,
      base->run_id.substr(0, 12) + " vs " + fresh->run_id.substr(0, 12));
  std::fputs(text.c_str(), res.regressions.empty() ? stdout : stderr);
  return res.regressions.empty() ? 0 : 1;
}

int cmd_outliers(const observe::History& h, const Args& a) {
  observe::OutlierOptions opts;
  if (a.last_n > 0) opts.last_n = a.last_n;
  const std::vector<observe::HistoryOutlier> found =
      observe::history_outliers(h, opts);
  std::int64_t gating = 0;
  for (const observe::HistoryOutlier& o : found)
    if (o.gating) ++gating;
  if (a.json_out) {
    std::fputs((observe::outliers_to_json(found) + "\n").c_str(), stdout);
  } else {
    for (const observe::HistoryOutlier& o : found)
      std::fprintf(g_report,
                   "%s %-28s %-9s %-6s run %.12s  value %g vs median %g "
                   "(z=%.1f)\n",
                   o.gating ? "FAIL" : "note", o.job.c_str(),
                   o.metric.c_str(), o.scope.c_str(), o.run_id.c_str(),
                   o.value, o.median, o.z);
    std::fprintf(g_report,
                 "outliers  : %zu flagged (%lld gating) over %zu run(s)\n",
                 found.size(), static_cast<long long>(gating), h.runs.size());
  }
  return a.gate && gating > 0 ? 1 : 0;
}

}  // namespace cli_history

/// `tsyn_cli history DIR [trend|diff|outliers|ingest] ...` — query (or feed)
/// the persistent run-history store. --html renders the fleet dashboard
/// alongside (or instead of) any subcommand.
int cmd_history(const Args& a) {
  const std::string& dir = a.behavior;
  const std::string sub = a.extras.empty() ? "" : a.extras[0];

  if (sub == "ingest") {
    if (a.extras.size() < 2) usage("history ingest needs a FILE argument");
    int added = 0;
    for (std::size_t i = 1; i < a.extras.size(); ++i) {
      std::ifstream in(a.extras[i]);
      if (!in) throw std::runtime_error("cannot open " + a.extras[i]);
      std::stringstream buf;
      buf << in.rdbuf();
      const observe::HistoryRun run = cli_history::run_from_artifact(
          util::Json::parse(buf.str()), a.extras[i]);
      const observe::IngestResult res = observe::history_ingest(dir, run);
      added += res.added ? 1 : 0;
      std::fprintf(g_report, "ingest    : %s -> run %.12s %s (%lld entries)\n",
                   a.extras[i].c_str(), res.run_id.c_str(),
                   res.added ? "added" : "already present",
                   static_cast<long long>(res.entries));
    }
    (void)added;
    return 0;
  }

  const observe::History h = observe::history_load(dir);
  if (h.runs.empty()) throw std::runtime_error("history store " + dir +
                                               " holds no complete runs");
  int rc = 0;
  if (sub == "trend") rc = cli_history::cmd_trend(h, a);
  else if (sub == "diff") rc = cli_history::cmd_diff(h, a);
  else if (sub == "outliers") rc = cli_history::cmd_outliers(h, a);
  else if (sub.empty()) {
    std::size_t entries = 0;
    for (const observe::HistoryRun& r : h.runs) entries += r.entries.size();
    std::fprintf(g_report, "history   : %zu run(s), %zu entries in %s\n",
                 h.runs.size(), entries, dir.c_str());
  } else {
    usage(("unknown history subcommand: " + sub +
           " (expected trend|diff|outliers|ingest)").c_str());
  }

  if (!a.html.empty()) {
    if (!write_output(a.html, observe::history_to_html(h))) {
      std::fprintf(stderr, "error: cannot write dashboard to %s\n",
                   a.html.c_str());
      return 1;
    }
    if (a.html != "-")
      std::fprintf(g_report, "html      : dashboard written to %s\n",
                   a.html.c_str());
  }
  return rc;
}

/// The standalone daemon (`tsyn_cli serve`): the observability endpoint
/// with nothing attached, the `tsyn_serve` skeleton from the ROADMAP.
/// main() already started the server (g_server); this just parks until a
/// client asks it to leave via GET /quitz or a signal takes the process
/// down (the crash-flush path stops the server either way).
int cmd_serve(const Args&) {
  if (!g_server) return 1;  // unreachable: main() starts it or exits
  std::fprintf(g_report, "serve     : GET /quitz (or SIGINT/SIGTERM) stops\n");
  g_server->wait_for_quit();
  return 0;
}

int run_command(const Args& a) {
  if (a.command == "synth") { tsyn::util::telemetry_set_phase("synth"); return cmd_synth(a); }
  if (a.command == "analyze") { tsyn::util::telemetry_set_phase("analyze"); return cmd_analyze(a); }
  if (a.command == "bist") { tsyn::util::telemetry_set_phase("bist"); return cmd_bist(a); }
  if (a.command == "atpg") { tsyn::util::telemetry_set_phase("atpg"); return cmd_atpg(a); }
  if (a.command == "report") { tsyn::util::telemetry_set_phase("report"); return cmd_report(a); }
  if (a.command == "explain") { tsyn::util::telemetry_set_phase("explain"); return cmd_explain(a); }
  if (a.command == "sweep") { tsyn::util::telemetry_set_phase("sweep"); return cmd_sweep(a); }
  if (a.command == "history") { tsyn::util::telemetry_set_phase("history"); return cmd_history(a); }
  if (a.command == "serve") { tsyn::util::telemetry_set_phase("serve"); return cmd_serve(a); }
  usage(("unknown command: " + a.command).c_str());
}

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.command == "list") {
    for (const cdfg::Cdfg& g : cdfg::standard_benchmarks())
      std::fprintf(g_report, "bench:%-8s %3d ops, %2zu states, %zu CDFG loops\n",
                  g.name().c_str(), g.num_ops(), g.states().size(),
                  cdfg::cdfg_loops(g).size());
    return 0;
  }
  // Two machine-readable outputs aimed at one path would silently
  // clobber each other (the second write wins); refuse up front, across
  // every output flag uniformly — sweep's --timeline/--history included.
  // "-" is also one path: a stream would interleave two documents.
  {
    std::vector<std::pair<const char*, const std::string*>> outs = {
        {"--trace", &a.trace},
        {"--metrics", &a.metrics},
        {"--heartbeat", &a.heartbeat},
        {"--profile", &a.profile},
    };
    if (a.command == "synth") outs.push_back({"--verilog", &a.verilog});
    if (a.command == "report") {
      outs.push_back({"--out", &a.out});
      outs.push_back({"--html", &a.html});
      outs.push_back({"--dot-rtl", &a.dot_rtl});
      outs.push_back({"--dot-cdfg", &a.dot_cdfg});
    }
    if (a.command == "sweep") {
      outs.push_back({"--timeline", &a.timeline});
      outs.push_back({"--history", &a.history});
    }
    if (a.command == "history") outs.push_back({"--html", &a.html});
    if (!reject_output_collisions(outs)) return 2;
  }
  // '-' outputs claim stdout; the human report yields to stderr so the
  // stream a consumer pipes stays pure JSON.
  if (a.trace == "-" || a.metrics == "-" || a.profile == "-")
    g_report = stderr;
  if (!a.trace.empty()) util::trace_enable();

  // Live telemetry: heartbeat stream, sampling profiler, TTY progress,
  // stall watchdog — all driven by one background sampler thread. The
  // profiler has static storage so the crash-flush atexit pass (which runs
  // after main's locals are gone) can still serialize it.
  static observe::Profiler profiler;
  const bool want_telemetry = !a.heartbeat.empty() || !a.profile.empty() ||
                              a.progress || a.watchdog_ms > 0;
  if (want_telemetry) {
    util::TelemetryOptions topts;
    topts.heartbeat_path = a.heartbeat;
    topts.interval_ms = a.heartbeat_ms;
    topts.watchdog_ms = a.watchdog_ms;
    topts.tty_progress = a.progress;
    if (!a.profile.empty()) {
      util::trace_stacks_enable();
      topts.sampler = [] { g_profiler->sample(); };
      g_profiler = &profiler;
    }
    if (a.watchdog_ms > 0) util::trace_stacks_enable();  // stall stacks
    if (!util::telemetry_start(topts)) {
      std::fprintf(stderr, "error: cannot open heartbeat stream %s\n",
                   a.heartbeat.c_str());
      return 1;
    }
  }
  // Live observability endpoint: started before the workload so the very
  // first pattern is already scrapeable, bound port announced on stderr
  // ("serving on ADDR:PORT") so callers of --serve 0 can find it.
  static observe::ObservabilityServer server;
  if (a.serve) {
    observe::ServeOptions sopts;
    sopts.addr = a.serve_addr;
    sopts.port = a.serve_port;
    sopts.command = a.command;
    sopts.allow_quit = a.command == "serve";  // attached runs end with the run
    sopts.jobs_extra = [] { return campaign::sweep_live_json(); };
    std::string err;
    if (!server.start(sopts, &err)) {
      std::fprintf(stderr, "error: cannot start observability server: %s\n",
                   err.c_str());
      if (util::telemetry_active()) util::telemetry_stop();
      return 1;
    }
    g_server = &server;
    std::fprintf(stderr, "serving on %s:%d\n", server.address().c_str(),
                 server.port());
    std::fflush(stderr);
  }
  // Make --trace/--metrics/--profile artifacts survive a crash, a watchdog
  // abort, or an operator Ctrl-C: best-effort flush of whatever was
  // collected so far — and take the endpoint's socket down with the
  // process. The normal shutdown path below disarms this.
  if (!a.trace.empty() || !a.metrics.empty() || !a.profile.empty() ||
      g_server) {
    const std::string trace_path = a.trace, metrics_path = a.metrics,
                      profile_path = a.profile;
    util::install_crash_flush([trace_path, metrics_path, profile_path] {
      if (!trace_path.empty()) write_output(trace_path, util::trace_to_json());
      if (!metrics_path.empty())
        write_output(metrics_path, util::metrics().to_json() + "\n");
      if (!profile_path.empty() && g_profiler)
        write_output(profile_path, g_profiler->collapsed());
      if (g_server) g_server->stop();
    });
  }

  // Uniform exit codes: every runtime failure — unreadable input, engine
  // error, bad manifest — surfaces as one stderr line and exit 1. Usage
  // errors exited 2 in parse_args; telemetry artifacts below still flush.
  int rc = 0;
  try {
    rc = run_command(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  if (util::telemetry_active()) util::telemetry_stop();
  if (!a.profile.empty()) {
    if (write_output(a.profile, profiler.collapsed())) {
      if (a.profile != "-")
        std::fprintf(g_report, "profile   : %ld stack samples -> %s\n",
                     static_cast<long>(profiler.samples()), a.profile.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write profile to %s\n",
                   a.profile.c_str());
      return 1;
    }
  }
  if (!a.trace.empty()) {
    if (write_output(a.trace, util::trace_to_json())) {
      if (a.trace != "-")
        std::fprintf(g_report, "trace     : %zu spans -> %s\n",
                     util::trace_span_count(), a.trace.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   a.trace.c_str());
      return 1;
    }
  }
  if (!a.metrics.empty()) {
    if (write_output(a.metrics, util::metrics().to_json() + "\n")) {
      if (a.metrics != "-")
        std::fprintf(g_report, "metrics   : written to %s\n",
                     a.metrics.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   a.metrics.c_str());
      return 1;
    }
  }
  // The endpoint outlives the artifact writes above on purpose: a scraper
  // can watch the registry through the very last flush. Stop is part of
  // the command's own lifetime — no lingering socket after exit 0.
  if (g_server) {
    const long long served = g_server->requests();
    g_server->stop();
    std::fprintf(g_report, "serve     : %lld request(s) served on %s:%d\n",
                 served, a.serve_addr.c_str(), server.port());
  }
  util::disarm_crash_flush();
  return rc;
}
