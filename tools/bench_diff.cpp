// bench_diff — gate a fresh BENCH_*.json against a checked-in baseline.
//
//   bench_diff BASELINE.json NEW.json [options]
//     --no-time              skip *_ms fields entirely
//     --time-tolerance=PCT   allowed *_ms growth in percent (default 50)
//     --tolerance=V          absolute slack for quality values (default 1e-9)
//     --allow-missing        missing rows/fields are notes, not failures
//     --quiet                print regressions only
//
// Exit codes: 0 = no regressions, 1 = regressions found, 2 = unusable
// inputs (parse failure, schema/seed mismatch, bad usage).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "observe/bench_diff.h"
#include "util/json.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json NEW.json [--no-time]"
               " [--time-tolerance=PCT] [--tolerance=V] [--allow-missing]"
               " [--quiet]\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, fresh_path;
  tsyn::observe::BenchDiffOptions opts;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-time") {
      opts.check_time = false;
    } else if (arg.rfind("--time-tolerance=", 0) == 0) {
      opts.time_tolerance_pct = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opts.value_tolerance = std::atof(arg.c_str() + 12);
    } else if (arg == "--allow-missing") {
      opts.allow_missing = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (fresh_path.empty()) return usage(argv[0]);

  std::string base_text, fresh_text;
  if (!read_file(base_path, &base_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", base_path.c_str());
    return 2;
  }
  if (!read_file(fresh_path, &fresh_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", fresh_path.c_str());
    return 2;
  }

  tsyn::util::Json base, fresh;
  try {
    base = tsyn::util::Json::parse(base_text);
  } catch (const tsyn::util::JsonParseError& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", base_path.c_str(), e.what());
    return 2;
  }
  try {
    fresh = tsyn::util::Json::parse(fresh_text);
  } catch (const tsyn::util::JsonParseError& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", fresh_path.c_str(), e.what());
    return 2;
  }

  const tsyn::observe::BenchDiffResult res =
      tsyn::observe::diff_bench_json(base, fresh, opts);
  if (!res.schema_ok) {
    std::fprintf(stderr, "bench_diff: %s\n", res.schema_error.c_str());
    return 2;
  }
  const std::string text = tsyn::observe::diff_result_to_text(
      res, quiet, base_path + " vs " + fresh_path);
  std::fputs(text.c_str(), res.regressions.empty() ? stdout : stderr);
  return res.regressions.empty() ? 0 : 1;
}
