// Run-history store tests: the determinism contract (ingestion-order-
// invariant canonical index bytes, invariant outlier verdicts), content-id
// semantics, self-healing load, run resolution, trend/diff/outlier
// analyses, and the self-contained HTML dashboard.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "observe/bench_diff.h"
#include "observe/history.h"
#include "util/json.h"

namespace tsyn::observe {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("history_" + name);
  fs::remove_all(dir);
  return dir;
}

HistoryEntry entry(const std::string& job, double coverage,
                   std::int64_t patterns, double wall_ms,
                   const std::string& design = "bench:fig1") {
  HistoryEntry e;
  e.job = job;
  e.design = design;
  e.config = "a1m1";
  e.scan = "full";
  e.width = 2;
  e.seed = 7;
  e.gates = 36;
  e.faults = 304;
  e.cubes = 7;
  e.coverage = coverage;
  e.efficiency = coverage;
  e.patterns = patterns;
  e.wall_ms = wall_ms;
  return e;
}

/// A grid-shaped run: `n` jobs, per-job coverage/patterns/wall defaults
/// tweakable via the entries the caller edits afterwards. `wall` seeds the
/// run-level wall time, which feeds the content id — distinct walls model
/// distinct executions of the same manifest.
HistoryRun make_run(double wall, int n = 4) {
  HistoryRun r;
  r.manifest = "2a885d23b30870ac";
  r.source = "test";
  r.wall_ms = wall;
  r.memo_hit_rate = 0.5;
  for (int i = 0; i < n; ++i)
    r.entries.push_back(
        entry("job" + std::to_string(i), 0.95, 16 + i, 1.0 + i));
  return r;
}

// ---------------------------------------------------------------------------
// Content identity
// ---------------------------------------------------------------------------

TEST(HistoryRunId, IndependentOfEntryOrder) {
  HistoryRun a = make_run(10.0);
  HistoryRun b = a;
  std::reverse(b.entries.begin(), b.entries.end());
  EXPECT_EQ(history_run_id(a), history_run_id(b));
}

TEST(HistoryRunId, DistinguishesReexecutions) {
  // Same manifest, same results, different wall time: a genuinely new
  // execution must get a new id (CI needs two ingests to diff).
  EXPECT_NE(history_run_id(make_run(10.0)), history_run_id(make_run(11.0)));
}

TEST(HistoryRunId, SensitiveToResults) {
  HistoryRun a = make_run(10.0);
  HistoryRun b = a;
  b.entries[2].coverage = 0.80;
  EXPECT_NE(history_run_id(a), history_run_id(b));
  HistoryRun c = a;
  c.source = "a different label";  // source is a store-only label, unhashed
  EXPECT_EQ(history_run_id(a), history_run_id(c));
}

// ---------------------------------------------------------------------------
// Ingest + canonical index determinism
// ---------------------------------------------------------------------------

TEST(HistoryStore, IngestIsIdempotent) {
  const fs::path dir = scratch("idempotent");
  const HistoryRun r = make_run(10.0);
  const IngestResult first = history_ingest(dir.string(), r);
  EXPECT_TRUE(first.added);
  EXPECT_EQ(first.runs_total, 1);
  EXPECT_EQ(first.entries, 4);
  const std::string index_bytes = slurp(dir / "index.json");
  const IngestResult again = history_ingest(dir.string(), r);
  EXPECT_FALSE(again.added);
  EXPECT_EQ(again.runs_total, 1);
  EXPECT_EQ(again.run_id, first.run_id);
  EXPECT_EQ(slurp(dir / "index.json"), index_bytes);
}

TEST(HistoryStore, IndexBytesAreIngestionOrderInvariant) {
  // The determinism contract: the canonical index is a pure function of
  // the *set* of ingested runs. Three runs, two ingestion orders, one
  // byte-identical index.json.
  HistoryRun r1 = make_run(10.0);
  HistoryRun r2 = make_run(20.0);
  HistoryRun r3 = make_run(30.0);
  r3.entries[1].coverage = 0.91;

  const fs::path fwd = scratch("order_fwd");
  for (const HistoryRun* r : {&r1, &r2, &r3}) history_ingest(fwd.string(), *r);
  const fs::path rev = scratch("order_rev");
  for (const HistoryRun* r : {&r3, &r2, &r1}) history_ingest(rev.string(), *r);

  const std::string fwd_bytes = slurp(fwd / "index.json");
  EXPECT_FALSE(fwd_bytes.empty());
  EXPECT_EQ(fwd_bytes, slurp(rev / "index.json"));

  // The in-memory canonical rendering agrees with the on-disk artifact.
  EXPECT_EQ(history_index_json(history_load(fwd.string())), fwd_bytes);
  EXPECT_EQ(history_index_json(history_load(rev.string())), fwd_bytes);
}

TEST(HistoryStore, LoadDropsTornTrailingRecords) {
  const fs::path dir = scratch("torn");
  history_ingest(dir.string(), make_run(10.0));
  const std::string good = slurp(dir / "index.json");
  {
    // A kill mid-append: a complete header for a second run but only one
    // of its entries, then a torn half-line. The partial run must not
    // surface; the first run must be untouched.
    std::ofstream app(dir / "store.jsonl", std::ios::app | std::ios::binary);
    app << "{\"type\":\"run\",\"run\":\"deadbeefdeadbeef\",\"manifest\":\"m\","
           "\"source\":\"t\",\"jobs\":4,\"wall_ms\":1,\"memo_hit_rate\":0.5}"
           "\n";
    app << "{\"type\":\"entry\",\"run\":\"deadbeefdeadbeef\",\"job\":\"job0\","
           "\"design\":\"d\",\"config\":\"c\",\"scan\":\"full\",\"width\":2,"
           "\"seed\":7,\"status\":\"ok\",\"gates\":1,\"faults\":2,"
           "\"patterns\":3,\"cubes\":4,\"coverage\":0.5,\"efficiency\":0.5,"
           "\"wall_ms\":1,\"error\":\"\"}\n";
    app << "{\"type\":\"entry\",\"run\":\"deadbeefdead";  // torn mid-write
  }
  const History h = history_load(dir.string());
  ASSERT_EQ(h.runs.size(), 1u);
  EXPECT_EQ(history_index_json(h), good);
  // Ingesting after the tear self-heals (terminates the torn line first).
  const IngestResult res = history_ingest(dir.string(), make_run(20.0));
  EXPECT_TRUE(res.added);
  EXPECT_EQ(history_load(dir.string()).runs.size(), 2u);
}

TEST(HistoryStore, LoadRejectsMissingStore) {
  EXPECT_THROW(history_load(scratch("missing").string()), HistoryError);
}

// ---------------------------------------------------------------------------
// Run resolution
// ---------------------------------------------------------------------------

TEST(HistoryResolve, RefGrammar) {
  const fs::path dir = scratch("resolve");
  history_ingest(dir.string(), make_run(10.0));
  history_ingest(dir.string(), make_run(20.0));
  const History h = history_load(dir.string());
  const std::vector<std::size_t> order = history_canonical_order(h);
  ASSERT_EQ(order.size(), 2u);

  std::string err;
  const HistoryRun* latest = history_resolve(h, "latest", &err);
  ASSERT_NE(latest, nullptr) << err;
  EXPECT_EQ(latest->run_id, h.runs[order[1]].run_id);
  const HistoryRun* prev = history_resolve(h, "prev", &err);
  ASSERT_NE(prev, nullptr) << err;
  EXPECT_EQ(prev->run_id, h.runs[order[0]].run_id);
  // 1-based canonical ordinal, and a unique id prefix.
  EXPECT_EQ(history_resolve(h, "1", &err), prev);
  EXPECT_EQ(history_resolve(h, "2", &err), latest);
  EXPECT_EQ(history_resolve(h, latest->run_id.substr(0, 6), &err), latest);
  EXPECT_EQ(history_resolve(h, "zzzz", &err), nullptr);
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Trend
// ---------------------------------------------------------------------------

TEST(HistoryTrend, SeriesFollowCanonicalOrderAndFilter) {
  const fs::path fwd = scratch("trend_fwd");
  const fs::path rev = scratch("trend_rev");
  HistoryRun r1 = make_run(10.0);
  HistoryRun r2 = make_run(20.0);
  r2.entries[0].coverage = 0.42;
  for (const HistoryRun* r : {&r1, &r2}) history_ingest(fwd.string(), *r);
  for (const HistoryRun* r : {&r2, &r1}) history_ingest(rev.string(), *r);

  const std::vector<TrendSeries> a = history_trend(history_load(fwd.string()));
  const std::vector<TrendSeries> b = history_trend(history_load(rev.string()));
  ASSERT_EQ(a.size(), 4u);
  // Ingestion order must not change any series (same runs, same points).
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job);
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (std::size_t j = 0; j < a[i].points.size(); ++j) {
      EXPECT_EQ(a[i].points[j].run_id, b[i].points[j].run_id);
      EXPECT_EQ(a[i].points[j].coverage, b[i].points[j].coverage);
    }
  }
  const std::vector<TrendSeries> filtered =
      history_trend(history_load(fwd.string()), "job2");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].job, "job2");
  EXPECT_EQ(filtered[0].points.size(), 2u);
}

// ---------------------------------------------------------------------------
// Outliers
// ---------------------------------------------------------------------------

TEST(HistoryOutliers, DeterministicMetricChangeGatesWithInfZ) {
  // Five executions; the fifth drops one job's coverage. MAD over the
  // window is zero, so the robust z is the categorical-change sentinel
  // and the verdict gates.
  const fs::path dir = scratch("outlier_cov");
  for (int i = 0; i < 4; ++i)
    history_ingest(dir.string(), make_run(10.0 + i));
  HistoryRun bad = make_run(50.0);
  bad.entries[1].coverage = 0.80;
  history_ingest(dir.string(), bad);

  const std::vector<HistoryOutlier> found =
      history_outliers(history_load(dir.string()));
  bool flagged = false;
  for (const HistoryOutlier& o : found) {
    if (o.job == "job1" && o.metric == "coverage") {
      flagged = true;
      EXPECT_TRUE(o.gating);
      EXPECT_EQ(o.value, 0.80);
      EXPECT_EQ(o.median, 0.95);
      EXPECT_GE(o.z, 1e6);  // MAD==0 sentinel: categorically anomalous
    }
    EXPECT_NE(o.metric, "wall_ms") << "steady walls must not be flagged";
  }
  EXPECT_TRUE(flagged);
}

TEST(HistoryOutliers, VerdictsAreIngestionOrderInvariant) {
  std::vector<HistoryRun> runs;
  for (int i = 0; i < 5; ++i) runs.push_back(make_run(10.0 + i));
  runs[4].entries[2].patterns = 900;  // pattern-count blowup in one run

  const fs::path fwd = scratch("outlier_fwd");
  const fs::path rev = scratch("outlier_rev");
  for (std::size_t i = 0; i < runs.size(); ++i)
    history_ingest(fwd.string(), runs[i]);
  for (std::size_t i = runs.size(); i-- > 0;)
    history_ingest(rev.string(), runs[i]);

  const std::string a =
      outliers_to_json(history_outliers(history_load(fwd.string())));
  const std::string b =
      outliers_to_json(history_outliers(history_load(rev.string())));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"patterns\""), std::string::npos);
  EXPECT_NE(a.find("\"gating\": true"), std::string::npos);
}

TEST(HistoryOutliers, StragglerIsInformationalOnly) {
  // Within-run peers scope: one job 30x slower than its same-design peers
  // is flagged, but timing never gates (mirrors bench_diff's time class).
  const fs::path dir = scratch("straggler");
  HistoryRun r = make_run(10.0, 6);
  for (auto& e : r.entries) e.wall_ms = 1.0;
  r.entries[3].wall_ms = 30.0;
  history_ingest(dir.string(), r);

  const std::vector<HistoryOutlier> found =
      history_outliers(history_load(dir.string()));
  ASSERT_FALSE(found.empty());
  bool straggler = false;
  for (const HistoryOutlier& o : found) {
    EXPECT_FALSE(o.gating);
    if (o.job == "job3" && o.scope == "peers") straggler = true;
  }
  EXPECT_TRUE(straggler);
}

TEST(HistoryOutliers, SmallGroupsAreSkipped) {
  // Below min_points the MAD is meaningless; nothing may be flagged.
  const fs::path dir = scratch("small");
  HistoryRun r = make_run(10.0, 2);
  r.entries[1].wall_ms = 100.0;
  history_ingest(dir.string(), r);
  EXPECT_TRUE(history_outliers(history_load(dir.string())).empty());
}

// ---------------------------------------------------------------------------
// Diff via bench_diff
// ---------------------------------------------------------------------------

TEST(HistoryDiff, CoverageDropAndStatusFlipGate) {
  HistoryRun base = make_run(10.0);
  HistoryRun fresh = make_run(20.0);
  fresh.entries[0].coverage = 0.50;      // quality drop -> regression
  fresh.entries[2].status = "failed";    // ok -> failed -> detected 0
  fresh.entries[2].error = "boom";

  const util::Json b = util::Json::parse(history_run_to_bench_json(base));
  const util::Json f = util::Json::parse(history_run_to_bench_json(fresh));
  BenchDiffOptions opts;
  opts.check_time = false;
  const BenchDiffResult res = diff_bench_json(b, f, opts);
  EXPECT_TRUE(res.schema_ok);
  ASSERT_FALSE(res.regressions.empty());
  const std::string all = diff_result_to_text(res, false, "base vs fresh");
  EXPECT_NE(all.find("coverage"), std::string::npos) << all;
  EXPECT_NE(all.find("detected"), std::string::npos) << all;

  // The reverse direction (fresh -> base) is an improvement: no gate.
  const BenchDiffResult up = diff_bench_json(f, b, opts);
  EXPECT_TRUE(up.ok()) << diff_result_to_text(up, false, "");
}

TEST(HistoryDiff, IdenticalRunsAreClean) {
  const HistoryRun r = make_run(10.0);
  const util::Json j = util::Json::parse(history_run_to_bench_json(r));
  const BenchDiffResult res = diff_bench_json(j, j);
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.notes.empty());
}

// ---------------------------------------------------------------------------
// Dashboard
// ---------------------------------------------------------------------------

TEST(HistoryHtml, SelfContainedAndComplete) {
  const fs::path dir = scratch("html");
  history_ingest(dir.string(), make_run(10.0));
  HistoryRun r2 = make_run(20.0);
  r2.entries[1].coverage = 0.80;
  history_ingest(dir.string(), r2);

  const std::string html = history_to_html(history_load(dir.string()));
  // Strictly self-contained: no scripts, no external references.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  // Every panel renders: trends, regression table, outliers, cache
  // economy, stragglers — and every job key appears.
  for (const char* needle :
       {"Trends per key", "Latest vs previous run", "Outliers",
        "Cache economy per run", "Stragglers", "job0", "job3", "<svg",
        "<polyline"})
    EXPECT_NE(html.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace tsyn::observe
