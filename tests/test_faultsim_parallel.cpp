// The multi-threaded fault-simulation engine: the sharded PPSFP path must
// be indistinguishable from the serial one, the event-driven sequential
// simulator must match the full-resimulation oracle, and repeated
// multi-threaded runs must be deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "gatelevel/bistgen.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tsyn {
namespace {

// Random combinational netlist (the same shape the property sweeps use).
gl::Netlist random_netlist(std::uint64_t seed, int gates = 80,
                           int inputs = 8) {
  util::Rng rng(seed);
  gl::Netlist n;
  std::vector<int> nodes;
  for (int i = 0; i < inputs; ++i)
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  for (int i = 0; i < gates; ++i) {
    static constexpr gl::GateType kTypes[] = {
        gl::GateType::kAnd,  gl::GateType::kOr,  gl::GateType::kNand,
        gl::GateType::kNor,  gl::GateType::kXor, gl::GateType::kXnor,
        gl::GateType::kNot,  gl::GateType::kMux};
    const gl::GateType t = kTypes[rng.pick_index(8)];
    const int arity = t == gl::GateType::kNot   ? 1
                      : t == gl::GateType::kMux ? 3
                                                : 2;
    std::vector<int> fanins;
    for (int a = 0; a < arity; ++a)
      fanins.push_back(nodes[rng.pick_index(nodes.size())]);
    nodes.push_back(n.add_gate(t, fanins));
  }
  for (int i = 0; i < 6; ++i)
    n.mark_output(nodes[nodes.size() - 1 - i]);
  n.validate();
  return n;
}

// Random sequential netlist: a combinational soup plus DFFs, some of them
// in feedback loops, with a mix of DFF and gate primary outputs.
gl::Netlist random_sequential_netlist(std::uint64_t seed, int gates = 60,
                                      int flops = 6) {
  util::Rng rng(seed);
  gl::Netlist n;
  std::vector<int> nodes;
  for (int i = 0; i < 4; ++i)
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  std::vector<int> dffs;
  for (int i = 0; i < flops; ++i) {
    const int q = n.add_dff(-1, "q" + std::to_string(i));
    dffs.push_back(q);
    nodes.push_back(q);  // Q feeds downstream logic (feedback possible)
  }
  for (int i = 0; i < gates; ++i) {
    static constexpr gl::GateType kTypes[] = {
        gl::GateType::kAnd, gl::GateType::kOr,  gl::GateType::kNand,
        gl::GateType::kNor, gl::GateType::kXor, gl::GateType::kNot,
        gl::GateType::kMux};
    const gl::GateType t = kTypes[rng.pick_index(7)];
    const int arity = t == gl::GateType::kNot   ? 1
                      : t == gl::GateType::kMux ? 3
                                                : 2;
    std::vector<int> fanins;
    for (int a = 0; a < arity; ++a)
      fanins.push_back(nodes[rng.pick_index(nodes.size())]);
    nodes.push_back(n.add_gate(t, fanins));
  }
  for (int i = 0; i < flops; ++i)
    n.set_dff_input(dffs[i], nodes[rng.pick_index(nodes.size())]);
  for (int i = 0; i < 3; ++i)
    n.mark_output(nodes[nodes.size() - 1 - i]);
  n.mark_output(dffs[0]);  // a DFF PO, like the seq-ATPG ring circuits
  n.validate();
  return n;
}

/// Ring register circuit from bench_seqatpg_effort.
gl::Netlist ring_circuit(int length) {
  gl::Netlist n;
  const int load = n.add_input("load");
  const int din = n.add_input("din");
  std::vector<int> regs;
  for (int i = 0; i < length; ++i)
    regs.push_back(n.add_dff(-1, "r" + std::to_string(i)));
  const int inv = n.add_gate(gl::GateType::kNot, {regs[length - 1]});
  const int d0 = n.add_gate(gl::GateType::kMux, {load, inv, din});
  n.set_dff_input(regs[0], d0);
  for (int i = 1; i < length; ++i) n.set_dff_input(regs[i], regs[i - 1]);
  n.mark_output(regs[0]);
  return n;
}

/// Register pipeline from bench_seqatpg_effort.
gl::Netlist pipeline_circuit(int depth) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int x = n.add_gate(gl::GateType::kXor, {a, b});
  int prev = x;
  for (int i = 0; i < depth; ++i) {
    const int q = n.add_dff(-1, "d" + std::to_string(i));
    n.set_dff_input(q, prev);
    prev = q;
  }
  n.mark_output(prev);
  return n;
}

class ParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSweep, RunBlockMatchesSerial) {
  const gl::Netlist n = random_netlist(GetParam());
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 3, GetParam() * 17 + 1);

  gl::FaultSimulator serial(n, gl::FaultSimOptions{1});
  gl::FaultSimulator parallel(n, gl::FaultSimOptions{4});
  std::vector<bool> ds(faults.size(), false), dp(faults.size(), false);
  for (const auto& block : blocks) {
    const int news = serial.run_block(block, faults, ds);
    const int newp = parallel.run_block(block, faults, dp);
    EXPECT_EQ(news, newp);
    EXPECT_EQ(serial.good_outputs().size(), parallel.good_outputs().size());
  }
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(ds[i], dp[i]) << gl::describe(n, faults[i]);
}

TEST_P(ParallelSweep, RunBlockDetailMatchesSerial) {
  const gl::Netlist n = random_netlist(GetParam(), 60);
  const auto faults = gl::enumerate_faults(n, /*collapse=*/false);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 2, GetParam() * 3 + 7);

  gl::FaultSimulator serial(n, gl::FaultSimOptions{1});
  gl::FaultSimulator parallel(n, gl::FaultSimOptions{4});
  std::vector<std::uint64_t> ms, mp;
  for (const auto& block : blocks) {
    serial.run_block_detail(block, faults, ms);
    parallel.run_block_detail(block, faults, mp);
    ASSERT_EQ(ms.size(), mp.size());
    for (std::size_t i = 0; i < faults.size(); ++i)
      EXPECT_EQ(ms[i], mp[i]) << gl::describe(n, faults[i]);
    // The good machine is unaffected by the sharding.
    for (int id = 0; id < n.num_nodes(); ++id) {
      EXPECT_EQ(serial.good_value(id).v, parallel.good_value(id).v);
      EXPECT_EQ(serial.good_value(id).x, parallel.good_value(id).x);
    }
  }
}

TEST_P(ParallelSweep, EventDrivenSequentialMatchesFullResim) {
  const gl::Netlist n = random_sequential_netlist(GetParam());
  const auto faults = gl::enumerate_faults(n);
  const auto frames = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 6, GetParam() * 5 + 11);

  const auto oracle = gl::sequential_fault_sim_full_resim(n, frames, faults);
  const auto serial =
      gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{1});
  const auto parallel =
      gl::sequential_fault_sim(n, frames, faults, gl::FaultSimOptions{4});
  ASSERT_EQ(oracle.size(), serial.size());
  ASSERT_EQ(oracle.size(), parallel.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(oracle[i], serial[i]) << gl::describe(n, faults[i]);
    EXPECT_EQ(oracle[i], parallel[i]) << gl::describe(n, faults[i]);
  }
}

TEST_P(ParallelSweep, FaultCoverageDeterministicAcrossRuns) {
  const gl::Netlist n = random_netlist(GetParam(), 100);
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 4, 5);

  gl::FaultSimOptions opts;
  opts.num_threads = 4;
  std::vector<bool> first;
  const double cov0 = gl::fault_coverage(n, blocks, faults, &first, opts);
  for (int run = 0; run < 3; ++run) {
    std::vector<bool> detected;
    const double cov = gl::fault_coverage(n, blocks, faults, &detected, opts);
    EXPECT_EQ(cov, cov0);
    EXPECT_EQ(detected, first);
  }
  // And the serial engine agrees with the default (hardware) engine.
  EXPECT_EQ(gl::fault_coverage(n, blocks, faults, nullptr,
                               gl::FaultSimOptions{1}),
            cov0);
  EXPECT_EQ(gl::fault_coverage(n, blocks, faults), cov0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweep, ::testing::Range(1, 11));

TEST(SequentialEventDriven, MatchesOracleOnSeqAtpgEffortCircuits) {
  // The bench_seqatpg_effort workloads: rings (long S-graph cycles, DFF
  // primary output) and pipelines (pure depth).
  for (int length = 1; length <= 6; ++length) {
    const gl::Netlist n = ring_circuit(length);
    const auto faults = gl::enumerate_faults(n);
    const auto frames = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), length + 4, 0xC0FFEE);
    EXPECT_EQ(gl::sequential_fault_sim(n, frames, faults),
              gl::sequential_fault_sim_full_resim(n, frames, faults))
        << "ring length " << length;
  }
  for (int depth = 1; depth <= 8; ++depth) {
    const gl::Netlist n = pipeline_circuit(depth);
    const auto faults = gl::enumerate_faults(n);
    const auto frames = gl::lfsr_pattern_blocks(
        static_cast<int>(n.primary_inputs().size()), depth + 3, 0xBEEF);
    EXPECT_EQ(gl::sequential_fault_sim(n, frames, faults),
              gl::sequential_fault_sim_full_resim(n, frames, faults))
        << "pipeline depth " << depth;
  }
}

TEST(SequentialEventDriven, DropsDetectedFaultEarly) {
  // A buffer pipeline: an output SA fault is caught as soon as the effect
  // marches to the PO; later frames must not resurrect it.
  const gl::Netlist n = pipeline_circuit(3);
  const gl::Fault f{n.flops()[0], -1, true};  // first stage stuck-at-1
  std::vector<std::vector<gl::Bits>> frames(
      8, std::vector<gl::Bits>{gl::Bits::all0(), gl::Bits::all0()});
  const auto det = gl::sequential_fault_sim(n, frames, {f});
  EXPECT_TRUE(det[0]);
  EXPECT_EQ(det, gl::sequential_fault_sim_full_resim(n, frames, {f}));
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.run(1000, 4, [&](int i, int slot) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 4);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlotsAreExclusive) {
  // Two items sharing a slot must never run concurrently: model slot
  // scratch as a counter that would be corrupted by simultaneous use.
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> in_use(4);
  for (auto& s : in_use) s.store(0);
  std::atomic<bool> clash{false};
  pool.run(500, 4, [&](int, int slot) {
    if (in_use[static_cast<std::size_t>(slot)].fetch_add(1) != 0)
      clash.store(true);
    in_use[static_cast<std::size_t>(slot)].fetch_sub(1);
  });
  EXPECT_FALSE(clash.load());
}

TEST(ThreadPool, PropagatesExceptions) {
  util::ThreadPool pool(3);
  EXPECT_THROW(pool.run(100, 3,
                        [](int i, int) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  pool.run(10, 3, [&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  util::ThreadPool pool(1);
  std::set<int> seen;  // no mutex: must run on the calling thread
  pool.run(50, 1, [&](int i, int slot) {
    EXPECT_EQ(slot, 0);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 50u);
}

}  // namespace
}  // namespace tsyn
