#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "hls/synthesis.h"
#include "rtl/area.h"
#include "rtl/controller.h"
#include "rtl/sgraph.h"

namespace tsyn::rtl {
namespace {

/// Minimal hand-built datapath: R0 -> ALU -> R1 -> ALU (loop through two
/// registers) plus a self-looping accumulator R2.
Datapath tiny_datapath() {
  Datapath dp;
  dp.name = "tiny";
  dp.primary_inputs.push_back({"x", 8});
  dp.regs.resize(3);
  dp.fus.resize(1);
  FuInfo& alu = dp.fus[0];
  alu.name = "ALU0";
  alu.type = cdfg::FuType::kAlu;
  alu.width = 8;
  alu.op_kinds = {cdfg::OpKind::kAdd};
  alu.port_drivers = {{{Source::Kind::kRegister, 0},
                       {Source::Kind::kRegister, 1}},
                      {{Source::Kind::kRegister, 2}}};
  dp.regs[0].name = "R0";
  dp.regs[0].width = 8;
  dp.regs[0].is_input = true;
  dp.regs[0].drivers = {{Source::Kind::kPrimaryInput, 0},
                        {Source::Kind::kFu, 0}};
  dp.regs[1].name = "R1";
  dp.regs[1].width = 8;
  dp.regs[1].drivers = {{Source::Kind::kFu, 0}};
  dp.regs[2].name = "R2";
  dp.regs[2].width = 8;
  dp.regs[2].holds_state = true;
  dp.regs[2].drivers = {{Source::Kind::kFu, 0}};
  dp.regs[1].is_output = true;
  dp.primary_outputs.push_back({"y", {Source::Kind::kRegister, 1}});
  dp.validate();
  return dp;
}

TEST(Sgraph, EdgesThroughFu) {
  const Datapath dp = tiny_datapath();
  const graph::Digraph s = build_sgraph(dp);
  // Every ALU operand register reaches every ALU-loaded register.
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_TRUE(s.has_edge(1, 0));
  EXPECT_TRUE(s.has_edge(2, 2));  // self-loop on the accumulator
  EXPECT_TRUE(s.has_edge(0, 0));  // R0 loads from FU fed by R0
}

TEST(Sgraph, ScanExclusionRemovesNode) {
  Datapath dp = tiny_datapath();
  dp.regs[0].test_kind = TestRegKind::kScan;
  const graph::Digraph s = build_sgraph(dp, /*exclude_scan=*/true);
  EXPECT_EQ(s.out_degree(0), 0);
  EXPECT_EQ(s.in_degree(0), 0);
}

TEST(Sgraph, LoopClassification) {
  const Datapath dp = tiny_datapath();
  const auto loops = analyze_loops(dp);
  LoopStats stats = loop_stats(dp);
  // All three registers reload through the shared ALU: three self-loops.
  EXPECT_EQ(stats.self_loops, 3);
  // R0<->R1 contains no state register: assignment loop.
  EXPECT_GT(stats.assignment_loops, 0);
  // Loops through the state-holding R2 classify as CDFG loops.
  bool found_cdfg_class = false;
  for (const auto& l : loops)
    if (l.kind == LoopClass::kCdfgLoop) found_cdfg_class = true;
  EXPECT_TRUE(found_cdfg_class);
}

TEST(Sgraph, CdfgLoopClassOnStateCycle) {
  Datapath dp = tiny_datapath();
  // Make R2 part of a length-2 loop: R2 -> (ALU port) ... R1 -> R2 is
  // already there via the ALU; mark R1 as state-holding instead.
  dp.regs[1].holds_state = true;
  const auto loops = analyze_loops(dp);
  bool found = false;
  for (const auto& l : loops)
    if (l.kind == LoopClass::kCdfgLoop && l.registers.size() > 1)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Sgraph, DepthAfterScan) {
  Datapath dp = tiny_datapath();
  EXPECT_EQ(datapath_sequential_depth(dp), -1);  // loops present
  dp.regs[0].test_kind = TestRegKind::kScan;
  dp.regs[2].test_kind = TestRegKind::kScan;
  EXPECT_GE(datapath_sequential_depth(dp, true), 0);
}

TEST(Sgraph, IoRegisterCount) {
  EXPECT_EQ(io_register_count(tiny_datapath()), 2);
}

TEST(Area, ScanCostsMoreThanPlain) {
  RegisterInfo plain;
  plain.width = 16;
  RegisterInfo scan = plain;
  scan.test_kind = TestRegKind::kScan;
  RegisterInfo cbilbo = plain;
  cbilbo.test_kind = TestRegKind::kCbilbo;
  EXPECT_LT(register_area(plain), register_area(scan));
  EXPECT_LT(register_area(scan), register_area(cbilbo));
}

TEST(Area, MultiplierDominatesAlu) {
  FuInfo alu;
  alu.type = cdfg::FuType::kAlu;
  alu.width = 16;
  FuInfo mul;
  mul.type = cdfg::FuType::kMultiplier;
  mul.width = 16;
  EXPECT_GT(fu_area(mul), 4 * fu_area(alu));
}

TEST(Area, OverheadFractionPositiveWithTestRegs) {
  Datapath dp = tiny_datapath();
  EXPECT_DOUBLE_EQ(test_area_overhead(dp), 0.0);
  dp.regs[0].test_kind = TestRegKind::kScan;
  const double overhead = test_area_overhead(dp);
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.5);
}

TEST(Area, DatapathAreaMonotoneInWidth) {
  Datapath dp = tiny_datapath();
  const double a8 = datapath_area(dp);
  for (auto& r : dp.regs) r.width = 16;
  for (auto& f : dp.fus) f.width = 16;
  EXPECT_GT(datapath_area(dp), a8);
}

TEST(Controller, ValueAndPairQueries) {
  Controller c;
  const int s0 = c.add_signal("sel", 3);
  const int s1 = c.add_signal("ld", 2);
  c.add_vector({0, 1});
  c.add_vector({1, 0});
  c.add_vector({2, -1});  // don't-care load
  EXPECT_TRUE(c.value_occurs(s0, 2));
  EXPECT_TRUE(c.pair_occurs(s0, 0, s1, 1));
  EXPECT_FALSE(c.pair_occurs(s0, 0, s1, 0));
  EXPECT_TRUE(c.pair_occurs(s0, 2, s1, 1));  // via the don't-care
}

TEST(Controller, ConflictDetectionAndResolution) {
  Controller c;
  c.add_signal("a", 2);
  c.add_signal("b", 2);
  c.add_vector({0, 1});
  c.add_vector({1, 0});
  // (a=0,b=0) and (a=1,b=1) never co-occur.
  const auto conflicts = find_pair_conflicts(c);
  EXPECT_EQ(conflicts.size(), 2u);
  EXPECT_LT(pair_coverage(c), 1.0);
  const int added = add_conflict_resolving_vectors(c);
  EXPECT_GE(added, 1);
  EXPECT_TRUE(find_pair_conflicts(c).empty());
  EXPECT_DOUBLE_EQ(pair_coverage(c), 1.0);
  EXPECT_EQ(c.num_test_vectors(), added);
}

TEST(Controller, NoConflictsNoVectors) {
  Controller c;
  c.add_signal("a", 2);
  c.add_vector({0});
  c.add_vector({1});
  EXPECT_EQ(add_conflict_resolving_vectors(c), 0);
}

TEST(Controller, RangeChecks) {
  Controller c;
  c.add_signal("a", 2);
  EXPECT_THROW(c.add_vector({5}), std::runtime_error);
  EXPECT_THROW(c.add_vector({0, 0}), std::runtime_error);
  c.add_vector({1});
  EXPECT_THROW(c.add_signal("late", 2), std::runtime_error);
}

TEST(Controller, SynthesizedControllersHaveConflicts) {
  // Real schedules almost always imply control implications; verify the
  // analysis finds them on a synthesized diffeq controller.
  const hls::Synthesis r = hls::synthesize(cdfg::diffeq());
  EXPECT_GT(find_pair_conflicts(r.rtl.controller).size(), 0u);
}

}  // namespace
}  // namespace tsyn::rtl
