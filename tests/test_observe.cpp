// Fault-lifecycle ledger, coverage waterfalls, SCOAP effort attribution,
// run reports, and bench_diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "compaction/compaction.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"
#include "hls/synthesis.h"
#include "observe/bench_diff.h"
#include "observe/ledger.h"
#include "observe/report.h"
#include "observe/scoap_attr.h"
#include "util/json.h"

namespace tsyn::observe {
namespace {

using compaction::CompactionOptions;
using compaction::CompactMode;
using compaction::TestCube;
using gl::Bits;
using gl::Fault;
using gl::Netlist;
using gl::V;

#ifdef TSYN_LEDGER_NOOP
// Recording is compiled out: only the API-shape tests below are
// meaningful (the snapshot is an empty skeleton by contract).
TEST(LedgerNoop, SnapshotIsEmptySkeleton) {
  const LedgerSnapshot snap = ledger_snapshot();
  EXPECT_TRUE(snap.journeys.empty());
  EXPECT_FALSE(ledger_enabled());
}
#else

/// Full-scan gate-level expansion of a behavior (every register scanned,
/// combinational netlist) — same rig as the compaction tests.
Netlist full_scan_netlist(const cdfg::Cdfg& g, int width) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  hls::Synthesis syn = hls::synthesize(g, opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

/// One static-compaction run on diffeq w4 with the ledger on, shared by
/// the snapshot-consuming tests (attribution, report, waterfall shape).
struct DiffeqRun {
  Netlist n;
  std::vector<Fault> faults;
  compaction::CompactedCampaign campaign;
  LedgerSnapshot snap;
};

const DiffeqRun& diffeq_run() {
  static const DiffeqRun* run = [] {
    auto* r = new DiffeqRun{full_scan_netlist(cdfg::diffeq(), 4), {}, {}, {}};
    r->faults = gl::enumerate_faults(r->n);
    CompactionOptions copts;
    copts.mode = CompactMode::kStatic;
    ledger_reset();
    ledger_enable();
    r->campaign = compaction::run_compacted_atpg(r->n, r->faults, copts,
                                                 10000, gl::FaultSimOptions{1});
    ledger_disable();
    r->snap = ledger_snapshot();
    ledger_reset();
    return r;
  }();
  return *run;
}

// ---- determinism: the tentpole acceptance contract ----

TEST(Ledger, JsonByteIdenticalAcrossThreadCounts) {
  const Netlist n = full_scan_netlist(cdfg::diffeq(), 4);
  const auto faults = gl::enumerate_faults(n);
  std::vector<std::string> jsons;
  for (int threads : {1, 2, 8}) {
    CompactionOptions copts;
    copts.mode = CompactMode::kStatic;
    ledger_reset();
    ledger_enable();
    compaction::run_compacted_atpg(n, faults, copts, 10000,
                                   gl::FaultSimOptions{threads});
    ledger_disable();
    jsons.push_back(ledger_to_json());
    ledger_reset();
  }
  ASSERT_EQ(jsons.size(), 3u);
  EXPECT_GT(jsons[0].size(), 1000u);  // a real artifact, not a skeleton
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
}

// ---- journeys and waterfalls on a real pipeline run ----

TEST(Ledger, JourneysCoverTheFaultUniverse) {
  const DiffeqRun& r = diffeq_run();
  EXPECT_EQ(r.snap.journeys.size(), r.faults.size());
  // Sorted by key, no duplicates.
  for (std::size_t i = 1; i < r.snap.journeys.size(); ++i)
    EXPECT_LT(r.snap.journeys[i - 1].key, r.snap.journeys[i].key);
  // Summary counts partition the universe.
  EXPECT_EQ(r.snap.detected + r.snap.dropped + r.snap.redundant +
                r.snap.aborted + r.snap.undetected,
            static_cast<std::int64_t>(r.faults.size()));
  EXPECT_GT(r.snap.detected, 0);
  EXPECT_GT(r.snap.total_decisions, 0);
  EXPECT_GT(r.snap.total_sim_events, 0);
}

TEST(Ledger, JourneyStatusesAgreeWithTheCampaign) {
  const DiffeqRun& r = diffeq_run();
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    const FaultKey key = make_fault_key(r.faults[i]);
    const auto it = std::lower_bound(
        r.snap.journeys.begin(), r.snap.journeys.end(), key,
        [](const FaultJourney& j, const FaultKey& k) { return j.key < k; });
    ASSERT_TRUE(it != r.snap.journeys.end() && it->key == key);
    switch (r.campaign.campaign.status[i]) {
      case gl::AtpgStatus::kDetected:
        // Either its own PODEM run detected it or it was dropped by an
        // earlier test's grading.
        EXPECT_TRUE(it->status == "detected" || it->status == "dropped")
            << i << " " << it->status;
        EXPECT_GE(it->first_detect_pattern, 0);
        break;
      case gl::AtpgStatus::kUntestable:
        EXPECT_EQ(it->status, "redundant");
        EXPECT_EQ(it->first_detect_pattern, -1);
        break;
      case gl::AtpgStatus::kAborted:
        // An aborted target can still fall to another fault's pattern.
        EXPECT_TRUE(it->status == "aborted" || it->status == "dropped");
        break;
    }
  }
}

TEST(Ledger, WaterfallsAreMonotoneAndBounded) {
  const DiffeqRun& r = diffeq_run();
  ASSERT_FALSE(r.snap.waterfalls.empty());
  bool saw_generate = false, saw_ship = false;
  for (const Waterfall& w : r.snap.waterfalls) {
    ASSERT_FALSE(w.curve.empty());
    EXPECT_GT(w.universe, 0);
    for (std::size_t i = 0; i < w.curve.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(w.curve[i - 1].index, w.curve[i].index);
        EXPECT_LT(w.curve[i - 1].detected, w.curve[i].detected);
      }
      EXPECT_GE(w.curve[i].index, 0);
    }
    EXPECT_LE(w.curve.back().detected, w.universe);
    saw_generate |= w.phase_name == "compact.generate";
    saw_ship |= w.phase_name == "compact.ship";
  }
  ASSERT_TRUE(saw_generate);
  ASSERT_TRUE(saw_ship);
  // Pre- and post-compaction curves end at comparable coverage (the
  // compaction contract: shipped coverage never drops below campaign's).
  const auto final_detected = [&](const char* phase) {
    for (const Waterfall& w : r.snap.waterfalls)
      if (w.phase_name == phase && w.domain == "pattern")
        return w.curve.back().detected;
    return std::int64_t{-1};
  };
  EXPECT_GE(final_detected("compact.ship"), final_detected("compact.generate"));
}

TEST(Ledger, JsonParsesAndMatchesSnapshot) {
  const DiffeqRun& r = diffeq_run();
  const std::string json = ledger_to_json(r.snap);
  const util::Json doc = util::Json::parse(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.number_or("schema", 0), 1.0);
  const util::Json* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->number_or("faults", 0),
            static_cast<double>(r.faults.size()));
  EXPECT_EQ(summary->number_or("detected", -1),
            static_cast<double>(r.snap.detected));
  const util::Json* faults_arr = doc.find("faults");
  ASSERT_NE(faults_arr, nullptr);
  EXPECT_EQ(faults_arr->arr.size(), r.snap.journeys.size());
}

// ---- first-detect / n-detect on a hand-checkable netlist ----

TEST(Ledger, DetectionMatrixRecordsFirstDetectAndNdetect) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(gl::GateType::kAnd, {a, b});
  n.mark_output(g);
  const std::vector<Fault> faults{{g, -1, false}, {g, -1, true}};
  // p0=(1,1) detects g-sa0; p1=(0,1), p2=(1,0), p3=(0,0) detect g-sa1.
  const auto cube = [](V x, V y) { return TestCube{x, y}; };
  const std::vector<TestCube> patterns{
      cube(V::k1, V::k1), cube(V::k0, V::k1), cube(V::k1, V::k0),
      cube(V::k0, V::k0)};
  ledger_reset();
  ledger_enable();
  compaction::detection_matrix(n, patterns, faults);
  ledger_disable();
  const LedgerSnapshot snap = ledger_snapshot();
  ledger_reset();

  ASSERT_EQ(snap.journeys.size(), 2u);
  const FaultJourney& sa0 = snap.journeys[0];  // sorted: sa1=0 first
  const FaultJourney& sa1 = snap.journeys[1];
  EXPECT_EQ(sa0.key.sa1, 0);
  EXPECT_EQ(sa0.first_detect_pattern, 0);
  EXPECT_EQ(sa0.n_detect, 1);
  EXPECT_EQ(sa0.status, "dropped");  // detected by grading, never targeted
  EXPECT_EQ(sa1.first_detect_pattern, 1);
  EXPECT_EQ(sa1.n_detect, 3);

  ASSERT_EQ(snap.waterfalls.size(), 1u);
  const Waterfall& w = snap.waterfalls[0];
  EXPECT_EQ(w.domain, "pattern");
  EXPECT_EQ(w.universe, 2);
  ASSERT_EQ(w.curve.size(), 2u);
  EXPECT_EQ(w.curve[0].index, 0);
  EXPECT_EQ(w.curve[0].detected, 1);
  EXPECT_EQ(w.curve[1].index, 1);
  EXPECT_EQ(w.curve[1].detected, 2);
}

// ---- sequential engine: frame-domain waterfall ----

TEST(Ledger, SequentialDetectionRecordsFrames) {
  Netlist n;
  const int in = n.add_input("in");
  const int ff = n.add_dff(in);
  const int out = n.add_gate(gl::GateType::kAnd, {ff, in});
  n.mark_output(out);
  const std::vector<Fault> faults{{ff, -1, false}};  // ff stuck-at-0
  // Frame 0 loads 1 into the flop (output X & 1 = X either way); frame 1
  // exposes the stuck flop: good out = 1, faulty out = 0.
  const std::vector<std::vector<Bits>> frames{{Bits::all1()}, {Bits::all1()}};
  ledger_reset();
  ledger_enable();
  const std::vector<bool> det = gl::sequential_fault_sim(n, frames, faults);
  ledger_disable();
  const LedgerSnapshot snap = ledger_snapshot();
  ledger_reset();

  ASSERT_EQ(det.size(), 1u);
  EXPECT_TRUE(det[0]);
  ASSERT_EQ(snap.journeys.size(), 1u);
  EXPECT_EQ(snap.journeys[0].first_detect_frame, 2);  // 1-based frame 2
  EXPECT_GT(snap.journeys[0].sim_events, 0);
  ASSERT_EQ(snap.waterfalls.size(), 1u);
  EXPECT_EQ(snap.waterfalls[0].domain, "frame");
  EXPECT_EQ(snap.waterfalls[0].universe, 1);
  ASSERT_EQ(snap.waterfalls[0].curve.size(), 1u);
  EXPECT_EQ(snap.waterfalls[0].curve[0].index, 2);
  EXPECT_EQ(snap.waterfalls[0].curve[0].detected, 1);
}

// ---- SCOAP attribution ----

TEST(Scoap, SpearmanOnKnownOrders) {
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({5, 5, 5}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1}, {2}), 0.0);
  // Ties get average ranks: {1,1,2} vs {3,3,9} is still a perfect match.
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1, 1, 2}, {3, 3, 9}), 1.0);
}

TEST(Scoap, AverageRanksHandleTies) {
  const std::vector<double> r = average_ranks({10, 20, 10, 30});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Scoap, AttributionJoinsLedgerAgainstNetlist) {
  const DiffeqRun& r = diffeq_run();
  const ScoapAttribution attr = attribute_scoap(r.n, r.snap, 10);
  ASSERT_FALSE(attr.rows.empty());
  // Every row is a targeted fault with resolvable SCOAP numbers.
  for (const ScoapFaultRow& row : attr.rows) {
    EXPECT_GT(row.cc, 0);
    EXPECT_GE(row.co, 0);
    EXPECT_EQ(row.predicted, row.cc + row.co);
    EXPECT_FALSE(row.label.empty());
  }
  for (std::size_t i = 1; i < attr.rows.size(); ++i)
    EXPECT_LT(attr.rows[i - 1].key, attr.rows[i].key);
  EXPECT_GE(attr.spearman, -1.0);
  EXPECT_LE(attr.spearman, 1.0);
  ASSERT_LE(attr.top_mispredicted.size(), 10u);
  // Top-mispredicted is sorted by descending |rank gap|.
  for (std::size_t i = 1; i < attr.top_mispredicted.size(); ++i) {
    const auto gap = [&](int idx) {
      return std::abs(attr.rows[static_cast<std::size_t>(idx)].rank_gap());
    };
    EXPECT_GE(gap(attr.top_mispredicted[i - 1]),
              gap(attr.top_mispredicted[i]));
  }
}

// ---- run report ----

RunReport make_report() {
  const DiffeqRun& r = diffeq_run();
  RunReport rep;
  rep.title = "diffeq w4 static";
  rep.behavior = "bench:diffeq";
  rep.compact_mode = "static";
  rep.xfill = "random";
  rep.width = 4;
  rep.gates = r.n.num_nodes();
  rep.pis = static_cast<std::int64_t>(r.n.primary_inputs().size());
  rep.faults = static_cast<std::int64_t>(r.faults.size());
  rep.fault_coverage = 100.0 * r.campaign.campaign.fault_coverage;
  rep.fault_efficiency = 100.0 * r.campaign.campaign.fault_efficiency;
  rep.cubes = static_cast<std::int64_t>(r.campaign.cubes.size());
  rep.patterns = static_cast<std::int64_t>(r.campaign.patterns.size());
  rep.baseline_patterns = r.campaign.baseline_patterns;
  rep.ledger = r.snap;
  rep.scoap = attribute_scoap(r.n, r.snap, 10);
  return rep;
}

TEST(Report, JsonIsWellFormedAndComplete) {
  const RunReport rep = make_report();
  const std::string json = report_to_json(rep);
  const util::Json doc = util::Json::parse(json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.number_or("schema", 0), 1.0);
  for (const char* key : {"design", "atpg", "ledger", "scoap", "metrics"}) {
    const util::Json* section = doc.find(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_TRUE(section->is_object()) << key;
  }
  EXPECT_EQ(doc.find("design")->number_or("faults", 0),
            static_cast<double>(rep.faults));
  EXPECT_EQ(doc.find("ledger")->number_or("schema", 0), 1.0);
  const util::Json* scoap = doc.find("scoap");
  EXPECT_EQ(scoap->number_or("rows", -1),
            static_cast<double>(rep.scoap.rows.size()));
}

TEST(Report, HtmlIsSelfContained) {
  const RunReport rep = make_report();
  const std::string html = report_to_html(rep);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);  // inline waterfall
  EXPECT_NE(html.find("SCOAP"), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
}

#endif  // TSYN_LEDGER_NOOP

// ---- bench_diff (ledger-independent) ----

util::Json parse(const std::string& s) { return util::Json::parse(s); }

const char* kBase = R"({
  "schema": 2, "seed": 1,
  "ppsfp": [
    {"circuit": "diffeq", "gates": 100, "faults": 400,
     "coverage": 98.5, "serial_ms": 10.0, "speedup8": 4.0}
  ]
})";

std::string with(const std::string& field, const std::string& value) {
  std::string s = kBase;
  const std::size_t pos = s.find(field + "\": ");
  EXPECT_NE(pos, std::string::npos);
  const std::size_t start = pos + field.size() + 3;
  const std::size_t end = s.find_first_of(",}", start);
  return s.substr(0, start) + value + s.substr(end);
}

TEST(BenchDiff, IdenticalFilesPass) {
  const BenchDiffResult res = diff_bench_json(parse(kBase), parse(kBase));
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.regressions.empty());
}

TEST(BenchDiff, CoverageDropFailsRiseIsANote) {
  const BenchDiffResult drop =
      diff_bench_json(parse(kBase), parse(with("coverage", "90.0")));
  EXPECT_FALSE(drop.ok());
  ASSERT_EQ(drop.regressions.size(), 1u);
  EXPECT_NE(drop.regressions[0].find("coverage"), std::string::npos);
  const BenchDiffResult rise =
      diff_bench_json(parse(kBase), parse(with("coverage", "99.5")));
  EXPECT_TRUE(rise.ok());
  EXPECT_FALSE(rise.notes.empty());
}

TEST(BenchDiff, TimeToleranceGates) {
  // +40% is inside the default 50% tolerance; +100% is not.
  EXPECT_TRUE(
      diff_bench_json(parse(kBase), parse(with("serial_ms", "14.0"))).ok());
  EXPECT_FALSE(
      diff_bench_json(parse(kBase), parse(with("serial_ms", "20.0"))).ok());
  BenchDiffOptions no_time;
  no_time.check_time = false;
  EXPECT_TRUE(
      diff_bench_json(parse(kBase), parse(with("serial_ms", "20.0")), no_time)
          .ok());
  BenchDiffOptions tight;
  tight.time_tolerance_pct = 10.0;
  EXPECT_FALSE(
      diff_bench_json(parse(kBase), parse(with("serial_ms", "14.0")), tight)
          .ok());
}

TEST(BenchDiff, WorkloadIdentityMustMatch) {
  const BenchDiffResult res =
      diff_bench_json(parse(kBase), parse(with("gates", "101")));
  EXPECT_FALSE(res.ok());
  ASSERT_EQ(res.regressions.size(), 1u);
  EXPECT_NE(res.regressions[0].find("identity"), std::string::npos);
}

TEST(BenchDiff, SpeedupDriftIsInformational) {
  const BenchDiffResult res =
      diff_bench_json(parse(kBase), parse(with("speedup8", "2.0")));
  EXPECT_TRUE(res.ok());
  EXPECT_FALSE(res.notes.empty());
}

TEST(BenchDiff, MissingRowFailsUnlessAllowed) {
  const std::string fresh = R"({"schema": 2, "seed": 1, "ppsfp": []})";
  EXPECT_FALSE(diff_bench_json(parse(kBase), parse(fresh)).ok());
  BenchDiffOptions allow;
  allow.allow_missing = true;
  EXPECT_TRUE(diff_bench_json(parse(kBase), parse(fresh), allow).ok());
}

TEST(BenchDiff, NullSkipMarkerIsANoteNotARegression) {
  // A single-core host writes "parallel_ms": null instead of a fake
  // measurement; the gate must not flag the skip either direction.
  const BenchDiffResult skipped =
      diff_bench_json(parse(kBase), parse(with("serial_ms", "null")));
  EXPECT_TRUE(skipped.ok());
  EXPECT_FALSE(skipped.notes.empty());
  const BenchDiffResult measured =
      diff_bench_json(parse(with("serial_ms", "null")), parse(kBase));
  EXPECT_TRUE(measured.ok());
  // Workload identity may not turn into a skip marker.
  const BenchDiffResult identity =
      diff_bench_json(parse(kBase), parse(with("gates", "null")));
  EXPECT_FALSE(identity.ok());
}

TEST(BenchDiff, MissingLeafMeasurementIsANote) {
  const std::string fresh = R"({
    "schema": 2, "seed": 1,
    "ppsfp": [
      {"circuit": "diffeq", "gates": 100, "faults": 400,
       "coverage": 98.5, "speedup8": 4.0}
    ]
  })";  // serial_ms absent: skipped measurement, not a regression
  const BenchDiffResult res = diff_bench_json(parse(kBase), parse(fresh));
  EXPECT_TRUE(res.ok());
  EXPECT_FALSE(res.notes.empty());
  // An identity field going missing is still a failure.
  const std::string no_gates = R"({
    "schema": 2, "seed": 1,
    "ppsfp": [
      {"circuit": "diffeq", "faults": 400,
       "coverage": 98.5, "serial_ms": 10.0, "speedup8": 4.0}
    ]
  })";
  EXPECT_FALSE(diff_bench_json(parse(kBase), parse(no_gates)).ok());
}

TEST(BenchDiff, SeedOrSchemaMismatchIsUnusable) {
  const BenchDiffResult res =
      diff_bench_json(parse(kBase), parse(with("seed", "2")));
  EXPECT_FALSE(res.schema_ok);
  EXPECT_NE(res.schema_error.find("seed"), std::string::npos);
}

TEST(BenchDiff, MetricsSubtreeIsIgnored) {
  const std::string base =
      R"({"schema": 2, "seed": 1, "metrics": {"counters": {"a": 1}}})";
  const std::string fresh =
      R"({"schema": 2, "seed": 1, "metrics": {"counters": {"a": 999}}})";
  const BenchDiffResult res = diff_bench_json(parse(base), parse(fresh));
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.notes.empty());
}

}  // namespace
}  // namespace tsyn::observe
