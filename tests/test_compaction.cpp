// Test-set compaction subsystem: cube algebra, dynamic compaction via
// base-cube PODEM re-entry, X-fill, reverse-order pruning, and the
// pattern-count acceptance contract on the benchmark DFGs.
#include <gtest/gtest.h>

#include <algorithm>

#include "cdfg/benchmarks.h"
#include "compaction/compaction.h"
#include "compaction/cube.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "hls/synthesis.h"
#include "util/rng.h"

namespace tsyn::compaction {
namespace {

using gl::AtpgStatus;
using gl::Fault;
using gl::Netlist;
using gl::V;
using gl::Word;

TestCube cube(std::initializer_list<int> bits) {
  TestCube c;
  for (int b : bits)
    c.push_back(b == 0 ? V::k0 : b == 1 ? V::k1 : V::kX);
  return c;
}

// ---- cube algebra ----

TEST(Cube, SpecifiedCountAndCompatibility) {
  EXPECT_EQ(specified_count(cube({0, 1, 2, 2})), 2);
  EXPECT_TRUE(compatible(cube({0, 2, 1}), cube({0, 1, 2})));
  EXPECT_TRUE(compatible(cube({2, 2, 2}), cube({0, 1, 0})));
  EXPECT_FALSE(compatible(cube({0, 2}), cube({1, 2})));
  EXPECT_FALSE(compatible(cube({0, 2}), cube({0, 2, 2})));  // width mismatch
}

TEST(Cube, MergeIsIntersection) {
  const TestCube m = merge(cube({0, 2, 1, 2}), cube({2, 1, 1, 2}));
  EXPECT_EQ(m, cube({0, 1, 1, 2}));
}

TEST(Cube, GreedyMergeCoversEveryInputCube) {
  const std::vector<TestCube> in{cube({0, 2, 2}), cube({2, 1, 2}),
                                 cube({1, 2, 2}), cube({2, 2, 0}),
                                 cube({0, 1, 1})};
  for (MergeOrder order :
       {MergeOrder::kAsGenerated, MergeOrder::kMostSpecifiedFirst,
        MergeOrder::kFewestSpecifiedFirst}) {
    const std::vector<TestCube> out = merge_compatible_cubes(in, order);
    EXPECT_LT(out.size(), in.size());
    // Every input cube must be refined by some output bin: the bin agrees
    // with all of the cube's specified bits.
    for (const TestCube& c : in) {
      bool covered = false;
      for (const TestCube& bin : out) {
        bool ok = true;
        for (std::size_t i = 0; i < c.size(); ++i)
          ok = ok && (c[i] == V::kX || bin[i] == c[i]);
        covered = covered || ok;
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST(Cube, IncompatibleCubesNeverMerge) {
  const std::vector<TestCube> in{cube({0}), cube({1}), cube({0})};
  const std::vector<TestCube> out = merge_compatible_cubes(in);
  EXPECT_EQ(out.size(), 2u);
}

// ---- X-fill ----

TEST(XFill, ConstantFills) {
  std::vector<TestCube> zero{cube({0, 2, 1, 2})};
  apply_xfill(zero, XFill::kZero, 1);
  EXPECT_EQ(zero[0], cube({0, 0, 1, 0}));
  std::vector<TestCube> one{cube({0, 2, 1, 2})};
  apply_xfill(one, XFill::kOne, 1);
  EXPECT_EQ(one[0], cube({0, 1, 1, 1}));
}

TEST(XFill, AdjacentRepeatsNearestSpecifiedBit) {
  std::vector<TestCube> c{cube({2, 2, 1, 2, 0, 2}), cube({2, 2, 2})};
  apply_xfill(c, XFill::kAdjacent, 1);
  // Leading run copies the first specified bit; later Xs copy leftwards.
  EXPECT_EQ(c[0], cube({1, 1, 1, 1, 0, 0}));
  // All-X cube degenerates to 0-fill.
  EXPECT_EQ(c[1], cube({0, 0, 0}));
}

TEST(XFill, RandomIsSeedDeterministicAndComplete) {
  std::vector<TestCube> a{cube({2, 0, 2, 2}), cube({2, 2, 1, 2})};
  std::vector<TestCube> b = a;
  apply_xfill(a, XFill::kRandom, 42);
  apply_xfill(b, XFill::kRandom, 42);
  EXPECT_EQ(a, b);
  for (const TestCube& c : a)
    for (V v : c) EXPECT_NE(v, V::kX);
  std::vector<TestCube> c2{cube({2, 0, 2, 2}), cube({2, 2, 1, 2})};
  apply_xfill(c2, XFill::kRandom, 43);
  EXPECT_NE(a, c2);  // a different seed moves at least one of 6 X bits
  // Specified bits are never touched.
  EXPECT_EQ(a[0][1], V::k0);
  EXPECT_EQ(a[1][2], V::k1);
}

TEST(Options, ParseRoundTrips) {
  XFill f;
  EXPECT_TRUE(parse_xfill("random", &f));
  EXPECT_TRUE(parse_xfill("0", &f));
  EXPECT_EQ(f, XFill::kZero);
  EXPECT_TRUE(parse_xfill("adjacent", &f));
  EXPECT_FALSE(parse_xfill("bogus", &f));
  CompactMode m;
  EXPECT_TRUE(parse_compact_mode("dynamic", &m));
  EXPECT_EQ(m, CompactMode::kDynamic);
  EXPECT_FALSE(parse_compact_mode("", &m));
  for (XFill x : {XFill::kRandom, XFill::kZero, XFill::kOne, XFill::kAdjacent}) {
    XFill back;
    EXPECT_TRUE(parse_xfill(to_string(x), &back));
    EXPECT_EQ(back, x);
  }
}

// ---- base-cube PODEM re-entry (the dynamic-compaction primitive) ----

TEST(PodemBase, RefinesCompatibleBase) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(gl::GateType::kAnd, {a, b});
  n.mark_output(g);
  gl::Podem podem(n);
  // Base pins a=1, leaves b free; output sa0 needs a=b=1: compatible.
  const gl::AtpgResult r =
      podem.generate_multi_from_base({{g, -1, false}}, {V::k1, V::kX});
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_EQ(r.pi_values[0], V::k1);
  EXPECT_EQ(r.pi_values[1], V::k1);
}

TEST(PodemBase, ConflictingBaseIsUntestableUnderBase) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(gl::GateType::kAnd, {a, b});
  n.mark_output(g);
  gl::Podem podem(n);
  // a pinned 0 blocks activation of output sa0 — untestable UNDER the
  // base, though trivially testable without it.
  const gl::AtpgResult r =
      podem.generate_multi_from_base({{g, -1, false}}, {V::k0, V::kX});
  EXPECT_EQ(r.status, AtpgStatus::kUntestable);
  EXPECT_EQ(podem.generate({g, -1, false}).status, AtpgStatus::kDetected);
}

TEST(PodemBase, BaseBitsSurviveBacktracking) {
  Netlist n;
  const Word a = gl::make_input_word(n, "a", 4);
  const Word b = gl::make_input_word(n, "b", 4);
  const Word s = gl::ripple_add(n, a, b, n.add_const(false));
  for (int bit : s) n.mark_output(bit);
  const auto faults = gl::enumerate_faults(n);
  gl::Podem podem(n);
  TestCube base(n.primary_inputs().size(), V::kX);
  base[0] = V::k1;
  base[5] = V::k0;
  int refined = 0;
  for (const Fault& f : faults) {
    const gl::AtpgResult r = podem.generate_multi_from_base({f}, base);
    if (r.status != AtpgStatus::kDetected) continue;
    ++refined;
    EXPECT_EQ(r.pi_values[0], V::k1);
    EXPECT_EQ(r.pi_values[5], V::k0);
  }
  EXPECT_GT(refined, 0);
}

// ---- grading utilities ----

Netlist small_adder(int width) {
  Netlist n;
  const Word a = gl::make_input_word(n, "a", width);
  const Word b = gl::make_input_word(n, "b", width);
  const Word s = gl::ripple_add(n, a, b, n.add_const(false));
  for (int bit : s) n.mark_output(bit);
  return n;
}

TEST(Grading, DetectionMatrixMatchesCoverage) {
  const Netlist n = small_adder(4);
  const auto faults = gl::enumerate_faults(n);
  // 70 patterns so the matrix spans a full block plus a partial one.
  std::vector<TestCube> patterns;
  util::Rng rng(7);
  for (int p = 0; p < 70; ++p) {
    TestCube c(n.primary_inputs().size());
    for (V& v : c) v = rng.next_bool() ? V::k1 : V::k0;
    patterns.push_back(c);
  }
  const auto matrix = detection_matrix(n, patterns, faults);
  std::vector<bool> det_from_matrix;
  for (const auto& row : matrix) {
    bool any = false;
    for (std::uint64_t w : row) any = any || w != 0;
    det_from_matrix.push_back(any);
  }
  std::vector<bool> det;
  gl::fault_coverage(n, patterns_to_blocks(patterns), faults, &det);
  EXPECT_EQ(det_from_matrix, det);
  // Thread count must not change the matrix.
  EXPECT_EQ(matrix, detection_matrix(n, patterns, faults,
                                     gl::FaultSimOptions{0}));
}

TEST(Grading, ReverseOrderPruneKeepsCoverageDropsDuplicates) {
  const Netlist n = small_adder(4);
  const auto faults = gl::enumerate_faults(n);
  std::vector<TestCube> patterns;
  util::Rng rng(11);
  for (int p = 0; p < 20; ++p) {
    TestCube c(n.primary_inputs().size());
    for (V& v : c) v = rng.next_bool() ? V::k1 : V::k0;
    patterns.push_back(c);
    patterns.push_back(c);  // exact duplicate: at most one can survive
  }
  const std::vector<int> kept = reverse_order_prune(n, patterns, faults);
  EXPECT_LE(kept.size(), patterns.size() / 2);
  std::vector<TestCube> pruned;
  for (int p : kept) pruned.push_back(patterns[p]);
  std::vector<bool> det_all, det_pruned;
  gl::fault_coverage(n, patterns_to_blocks(patterns), faults, &det_all);
  gl::fault_coverage(n, patterns_to_blocks(pruned), faults, &det_pruned);
  EXPECT_EQ(det_all, det_pruned);
}

TEST(Grading, NdetectCountsEveryDetection) {
  const Netlist n = small_adder(3);
  const auto faults = gl::enumerate_faults(n);
  std::vector<TestCube> patterns;
  util::Rng rng(3);
  for (int p = 0; p < 40; ++p) {
    TestCube c(n.primary_inputs().size());
    for (V& v : c) v = rng.next_bool() ? V::k1 : V::k0;
    patterns.push_back(c);
  }
  const NdetectProfile prof = grade_ndetect(n, patterns, faults);
  std::vector<bool> det;
  const double cov =
      gl::fault_coverage(n, patterns_to_blocks(patterns), faults, &det);
  for (std::size_t f = 0; f < faults.size(); ++f)
    EXPECT_EQ(prof.counts[f] > 0, static_cast<bool>(det[f]));
  EXPECT_DOUBLE_EQ(prof.fraction_at_least(1), cov);
  EXPECT_GE(prof.fraction_at_least(1), prof.fraction_at_least(4));
}

// ---- the pipeline ----

TEST(Pipeline, OffModeIsBitIdenticalToPlainCampaign) {
  const Netlist n = small_adder(5);
  const auto faults = gl::enumerate_faults(n);
  const gl::AtpgCampaign plain = gl::run_combinational_atpg(n, faults);
  CompactionOptions copts;  // mode kOff
  const CompactedCampaign c = run_compacted_atpg(n, faults, copts);
  EXPECT_EQ(c.campaign.status, plain.status);
  EXPECT_EQ(c.campaign.tests, plain.tests);
  EXPECT_EQ(c.campaign.total.decisions, plain.total.decisions);
  EXPECT_EQ(c.campaign.total.backtracks, plain.total.backtracks);
  EXPECT_DOUBLE_EQ(c.campaign.fault_coverage, plain.fault_coverage);
  // The recorded grading fill is the new explicit contract: one block per
  // test, every lane fully specified.
  ASSERT_EQ(plain.graded_fill.size(), plain.tests.size());
  for (const auto& block : plain.graded_fill)
    for (const gl::Bits& b : block) EXPECT_EQ(b.x, 0u);
  EXPECT_EQ(c.patterns.size(), c.cubes.size());
  EXPECT_EQ(c.baseline_patterns, static_cast<long>(c.patterns.size()));
}

TEST(Pipeline, StaticCompactionNeverLosesCampaignCoverage) {
  const Netlist n = small_adder(6);
  const auto faults = gl::enumerate_faults(n);
  CompactionOptions copts;
  copts.mode = CompactMode::kStatic;
  copts.xfill = XFill::kZero;  // the adversarial fill for lucky detections
  const CompactedCampaign c = run_compacted_atpg(n, faults, copts);
  // The baseline is the pattern set the campaign's coverage certifies: all
  // 64 random completions of every cube (its graded_fill blocks).
  EXPECT_EQ(c.baseline_patterns,
            64 * static_cast<long>(c.campaign.tests.size()));
  EXPECT_LT(static_cast<long>(c.patterns.size()), c.baseline_patterns);
  EXPECT_GE(c.pattern_coverage, c.campaign.fault_coverage);
  // Ternary cubes survive in `cubes`; shipped patterns are fully filled.
  for (const TestCube& p : c.patterns)
    for (V v : p) EXPECT_NE(v, V::kX);
}

TEST(Pipeline, DynamicFoldsSecondaryFaultsIntoPrimaryCubes) {
  const Netlist n = small_adder(6);
  const auto faults = gl::enumerate_faults(n);
  CompactionOptions copts;
  copts.mode = CompactMode::kDynamic;
  const CompactedCampaign c = run_compacted_atpg(n, faults, copts);
  const gl::AtpgCampaign plain = gl::run_combinational_atpg(n, faults);
  // Secondary faults get folded into primary cubes as deterministic
  // detections. (The dynamic campaign may emit MORE cubes than the plain
  // one — extra specified bits mean fewer lucky random-fill drops — the
  // win is in the final shipped pattern count, not the cube count.)
  EXPECT_GT(c.stats.secondary_merged, 0);
  EXPECT_GE(c.pattern_coverage, plain.fault_coverage);
  EXPECT_EQ(c.baseline_patterns, 64 * static_cast<long>(plain.tests.size()));
  EXPECT_LT(static_cast<long>(c.patterns.size()), c.baseline_patterns);
}

TEST(Pipeline, DeterministicAcrossThreadCounts) {
  const Netlist n = small_adder(5);
  const auto faults = gl::enumerate_faults(n);
  CompactionOptions copts;
  copts.mode = CompactMode::kDynamic;
  copts.xfill = XFill::kAdjacent;
  const CompactedCampaign serial =
      run_compacted_atpg(n, faults, copts, 10000, gl::FaultSimOptions{1});
  const CompactedCampaign parallel =
      run_compacted_atpg(n, faults, copts, 10000, gl::FaultSimOptions{0});
  EXPECT_EQ(serial.patterns, parallel.patterns);
  EXPECT_EQ(serial.cubes, parallel.cubes);
  EXPECT_EQ(serial.campaign.status, parallel.campaign.status);
  EXPECT_DOUBLE_EQ(serial.pattern_coverage, parallel.pattern_coverage);
  // And run-to-run.
  const CompactedCampaign again =
      run_compacted_atpg(n, faults, copts, 10000, gl::FaultSimOptions{1});
  EXPECT_EQ(serial.patterns, again.patterns);
}

// ---- acceptance: >= 25% pattern reduction on the benchmark DFGs ----

/// Full-scan gate-level expansion of a behavior: every register scanned,
/// so the netlist is combinational and PODEM-targetable.
Netlist full_scan_netlist(const cdfg::Cdfg& g, int width) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  hls::Synthesis syn = hls::synthesize(g, opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

TEST(Acceptance, BenchmarkDfgsCompactAtLeast25PercentAtEqualCoverage) {
  struct Case {
    const char* name;
    cdfg::Cdfg g;
  };
  std::vector<Case> cases;
  cases.push_back({"diffeq", cdfg::diffeq()});
  cases.push_back({"tseng", cdfg::tseng()});
  for (Case& c : cases) {
    const Netlist n = full_scan_netlist(c.g, 4);
    const auto faults = gl::enumerate_faults(n);
    const gl::AtpgCampaign plain =
        gl::run_combinational_atpg(n, faults, 10000);
    CompactionOptions copts;
    copts.mode = CompactMode::kDynamic;
    copts.xfill = XFill::kAdjacent;
    const CompactedCampaign comp = run_compacted_atpg(n, faults, copts, 10000);
    // The uncompacted campaign realizes plain.fault_coverage only by
    // applying all 64 recorded random completions of each cube.
    EXPECT_EQ(comp.baseline_patterns,
              64 * static_cast<long>(plain.tests.size()))
        << c.name;
    // The acceptance contract: static+dynamic compaction with
    // reverse-order pruning cuts pattern count by >= 25% while coverage
    // does not drop below the uncompacted campaign's.
    EXPECT_LE(static_cast<double>(comp.patterns.size()),
              0.75 * static_cast<double>(comp.baseline_patterns))
        << c.name << ": " << comp.patterns.size() << " vs "
        << comp.baseline_patterns;
    EXPECT_GE(comp.pattern_coverage, plain.fault_coverage) << c.name;
  }
}

}  // namespace
}  // namespace tsyn::compaction
