// Tests for the live-telemetry layer: progress counters, heartbeat JSONL
// streaming, the stall watchdog, the span-stack sampling profiler, and the
// crash-flush hooks — plus the invariant that telemetry never changes
// fault-sim results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"
#include "hls/synthesis.h"
#include "observe/ledger.h"
#include "observe/profile.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace tsyn {
namespace {

using gl::Fault;
using gl::Netlist;

/// Full-scan gate-level expansion of a behavior (every register scanned,
/// combinational netlist) — same rig as the observe/compaction tests.
Netlist full_scan_netlist(const cdfg::Cdfg& g, int width) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  hls::Synthesis syn = hls::synthesize(g, opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

std::vector<std::vector<gl::Bits>> random_blocks(const Netlist& n, int count,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<gl::Bits>> blocks;
  for (int b = 0; b < count; ++b) {
    std::vector<gl::Bits> blk(n.primary_inputs().size());
    for (gl::Bits& bits : blk) bits = gl::Bits::known(rng.next_u64());
    blocks.push_back(std::move(blk));
  }
  return blocks;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// -- progress counters -------------------------------------------------------

TEST(Progress, GatedOnEnableAndHandleStable) {
  util::progress_reset();
  util::Progress& p = util::progress("test.progress.gate");
  EXPECT_EQ(&p, &util::progress("test.progress.gate"));
  util::progress_disable();
  p.add(5);
  p.add_total(10);
  EXPECT_EQ(p.done(), 0);  // disabled adds are dropped, not deferred
  EXPECT_EQ(p.total(), 0);
  util::progress_enable();
  p.add(5);
  p.add_total(10);
  EXPECT_EQ(p.done(), 5);
  EXPECT_EQ(p.total(), 10);
  util::progress_disable();
  util::progress_reset();
}

TEST(Progress, SnapshotSortedAndReset) {
  util::progress_reset();
  util::progress_enable();
  util::progress("test.progress.b").add(2);
  util::progress("test.progress.a").add_total(7);
  const auto rows = util::progress_snapshot();
  // std::map ordering: "test.progress.a" precedes "test.progress.b".
  std::size_t ia = rows.size(), ib = rows.size();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == "test.progress.a") ia = i;
    if (rows[i].name == "test.progress.b") ib = i;
  }
  ASSERT_LT(ia, rows.size());
  ASSERT_LT(ib, rows.size());
  EXPECT_LT(ia, ib);
  EXPECT_EQ(rows[ia].total, 7);
  EXPECT_EQ(rows[ib].done, 2);
  util::progress_disable();
  util::progress_reset();
  for (const auto& r : util::progress_snapshot()) {
    EXPECT_EQ(r.done, 0) << r.name;
    EXPECT_EQ(r.total, 0) << r.name;
  }
}

// -- heartbeat stream --------------------------------------------------------

TEST(Heartbeat, JsonlSchemaAndMonotonicTimestamps) {
  const std::string path = testing::TempDir() + "tsyn_hb_schema.jsonl";
  std::remove(path.c_str());
  util::progress_reset();
  util::TelemetryOptions opts;
  opts.heartbeat_path = path;
  opts.interval_ms = 5;
  ASSERT_TRUE(util::telemetry_start(opts));
  util::telemetry_set_phase("test.heartbeat");
  util::Progress& p = util::progress("test.hb.work");
  p.add_total(1000);
  for (int i = 0; i < 20; ++i) {
    p.add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  util::telemetry_stop();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u) << "expected several heartbeats at 5 ms";
  EXPECT_EQ(static_cast<long>(lines.size()), util::telemetry_heartbeat_count());
  double last_seq = -1.0, last_t = -1.0;
  bool saw_row = false;
  for (const std::string& line : lines) {
    const util::Json j = util::Json::parse(line);  // throws on bad JSON
    ASSERT_TRUE(j.is_object());
    EXPECT_EQ(j.number_or("schema", 0), 1);
    const util::Json* type = j.find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_EQ(type->str, "heartbeat");
    const double seq = j.number_or("seq", -1);
    const double t = j.number_or("t_ms", -1);
    EXPECT_GT(seq, last_seq) << "seq must strictly increase";
    EXPECT_GE(t, last_t) << "t_ms must be monotonic";
    last_seq = seq;
    last_t = t;
    const util::Json* phase = j.find("phase");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->str, "test.heartbeat");
    const util::Json* progress = j.find("progress");
    ASSERT_NE(progress, nullptr);
    ASSERT_TRUE(progress->is_array());
    for (const util::Json& row : progress->arr) {
      const util::Json* name = row.find("name");
      ASSERT_NE(name, nullptr);
      if (name->str != "test.hb.work") continue;
      saw_row = true;
      const double done = row.number_or("done", -1);
      const double total = row.number_or("total", -1);
      EXPECT_GE(done, 0);
      EXPECT_LE(done, total);  // total is clamped to at least done
      ASSERT_NE(row.find("rate_per_s"), nullptr);
      ASSERT_NE(row.find("eta_ms"), nullptr);  // number or null, but present
      ASSERT_NE(row.find("delta"), nullptr);
    }
    EXPECT_NE(j.find("counters"), nullptr);
    EXPECT_NE(j.find("gauges"), nullptr);
  }
  EXPECT_TRUE(saw_row);
  // The final heartbeat (emitted at stop) must carry the finished state.
  const util::Json last = util::Json::parse(lines.back());
  for (const util::Json& row : last.find("progress")->arr)
    if (row.find("name")->str == "test.hb.work")
      EXPECT_EQ(row.number_or("done", -1), 200);
  std::remove(path.c_str());
  util::progress_reset();
}

TEST(Heartbeat, StartRejectsUnopenablePathAndSecondSession) {
  util::TelemetryOptions bad;
  bad.heartbeat_path = testing::TempDir() + "tsyn_hb_dir_as_file/";
  EXPECT_FALSE(util::telemetry_start(bad));
  EXPECT_FALSE(util::telemetry_active());

  util::TelemetryOptions ok;
  ok.heartbeat_path = testing::TempDir() + "tsyn_hb_nested/deep/hb.jsonl";
  ASSERT_TRUE(util::telemetry_start(ok));  // parent dirs created
  EXPECT_TRUE(util::telemetry_active());
  EXPECT_FALSE(util::telemetry_start(ok));  // one session at a time
  util::telemetry_stop();
  EXPECT_FALSE(util::telemetry_active());
}

TEST(Heartbeat, JobsRollupAppearsOnlyWhenJobsAreTracked) {
  const std::string path = testing::TempDir() + "tsyn_hb_jobs.jsonl";
  std::remove(path.c_str());
  util::progress_reset();
  util::telemetry_jobs_reset();
  util::TelemetryOptions opts;
  opts.heartbeat_path = path;
  opts.interval_ms = 5;
  ASSERT_TRUE(util::telemetry_start(opts));
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  util::telemetry_job_begin("grid.a");
  util::telemetry_job_begin("grid.b");
  util::telemetry_job_end("grid.a", /*failed=*/false);
  util::telemetry_job_begin("grid.c");
  util::telemetry_job_end("grid.c", /*failed=*/true);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  util::telemetry_stop();

  const util::JobsSnapshot snap = util::telemetry_jobs_snapshot();
  EXPECT_EQ(snap.started, 3);
  EXPECT_EQ(snap.done, 2);
  EXPECT_EQ(snap.failed, 1);
  ASSERT_EQ(snap.running.size(), 1u);
  EXPECT_EQ(snap.running[0], "grid.b");

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  // Pre-sweep heartbeats keep the single-job shape; once jobs register,
  // the rollup appears with counts and the sorted running list.
  EXPECT_EQ(util::Json::parse(lines.front()).find("jobs"), nullptr);
  const util::Json last = util::Json::parse(lines.back());
  const util::Json* jobs = last.find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->number_or("started", -1), 3);
  EXPECT_EQ(jobs->number_or("done", -1), 2);
  EXPECT_EQ(jobs->number_or("failed", -1), 1);
  const util::Json* running = jobs->find("running");
  ASSERT_NE(running, nullptr);
  ASSERT_EQ(running->arr.size(), 1u);
  EXPECT_EQ(running->arr[0].str, "grid.b");
  // The last-line accessor hands failure post-mortems exactly the final
  // emitted heartbeat.
  EXPECT_EQ(util::telemetry_last_line(), lines.back());

  std::remove(path.c_str());
  util::telemetry_jobs_reset();
  util::progress_reset();
}

// -- ledger reconciliation ---------------------------------------------------

#ifndef TSYN_LEDGER_NOOP
TEST(Progress, AtpgTargetsReconcileWithLedgerTotals) {
  const Netlist n = full_scan_netlist(cdfg::diffeq(), 4);
  std::vector<Fault> faults = gl::enumerate_faults(n);
  util::progress_reset();
  util::progress_enable();
  observe::ledger_reset();
  observe::ledger_enable();
  (void)gl::run_combinational_atpg(n, faults, /*backtrack_limit=*/2000);
  observe::ledger_disable();
  util::progress_disable();
  const observe::LedgerSnapshot snap = observe::ledger_snapshot();

  const util::Progress& p = util::progress("atpg.targets");
  // Every fault is closed exactly once (generated, graded away, proven
  // redundant, or aborted), so done == total == the fault universe — which
  // is also the ledger's journey count and its status partition.
  EXPECT_EQ(p.total(), static_cast<std::int64_t>(faults.size()));
  EXPECT_EQ(p.done(), p.total());
  EXPECT_EQ(static_cast<std::int64_t>(snap.journeys.size()), p.done());
  EXPECT_EQ(snap.detected + snap.dropped + snap.redundant + snap.aborted +
                snap.undetected,
            p.done());
  util::progress_reset();
}

TEST(Progress, PatternsReconcileWithGradedTests) {
  const Netlist n = full_scan_netlist(cdfg::diffeq(), 4);
  std::vector<Fault> faults = gl::enumerate_faults(n);
  util::progress_reset();
  util::progress_enable();
  const gl::AtpgCampaign c =
      gl::run_combinational_atpg(n, faults, /*backtrack_limit=*/2000);
  util::progress_disable();
  // Each graded test is one 64-lane PPSFP block.
  EXPECT_EQ(util::progress("sim.patterns").done(),
            64 * static_cast<std::int64_t>(c.tests.size()));
  util::progress_reset();
}
#endif  // TSYN_LEDGER_NOOP

// -- stall watchdog ----------------------------------------------------------

#ifndef TSYN_TRACE_NOOP
TEST(Watchdog, FiresOnStallWithStacksAndRearms) {
  const std::string path = testing::TempDir() + "tsyn_hb_stall.jsonl";
  std::remove(path.c_str());
  util::progress_reset();
  util::trace_stacks_enable();
  std::atomic<int> stalls{0};
  util::TelemetryOptions opts;
  opts.heartbeat_path = path;
  opts.interval_ms = 1000;  // heartbeats mostly out of the way
  opts.watchdog_ms = 40;
  opts.on_stall = [&stalls] { ++stalls; };
  ASSERT_TRUE(util::telemetry_start(opts));
  util::telemetry_set_phase("test.stall");
  util::Progress& p = util::progress("test.stall.work");
  p.add_total(100);
  {
    TSYN_SPAN("test.stall.span");
    // First episode: no progress for well over the window.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_GE(stalls.load(), 1);
    const int after_first = stalls.load();
    // Progress re-arms the watchdog; a second silence fires again.
    p.add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_GT(stalls.load(), after_first);
  }
  util::telemetry_stop();
  util::trace_stacks_disable();

  bool saw_stall = false;
  for (const std::string& line : read_lines(path)) {
    const util::Json j = util::Json::parse(line);
    const util::Json* type = j.find("type");
    ASSERT_NE(type, nullptr);
    if (type->str != "stall") continue;
    saw_stall = true;
    EXPECT_GE(j.number_or("stalled_ms", 0), 40.0);
    const util::Json* stacks = j.find("stacks");
    ASSERT_NE(stacks, nullptr);
    ASSERT_TRUE(stacks->is_array());
    bool saw_frame = false;
    for (const util::Json& ts : stacks->arr)
      for (const util::Json& frame : ts.find("frames")->arr)
        if (frame.str == "test.stall.span") saw_frame = true;
    EXPECT_TRUE(saw_frame)
        << "stall record must carry the stalled thread's live span stack";
  }
  EXPECT_TRUE(saw_stall);
  std::remove(path.c_str());
  util::progress_reset();
}
#endif  // TSYN_TRACE_NOOP

// -- sampling profiler -------------------------------------------------------

#ifndef TSYN_TRACE_NOOP
TEST(Profiler, CollapsedStacksAndSelfTime) {
  util::trace_stacks_enable();
  observe::Profiler prof;
  {
    TSYN_SPAN("prof.outer");
    prof.sample();
    {
      TSYN_SPAN("prof.inner");
      prof.sample();
      prof.sample();
    }
    prof.sample();
  }
  util::trace_stacks_disable();
  EXPECT_EQ(prof.ticks(), 4);
  EXPECT_GE(prof.samples(), 4);  // other registered threads may add stacks
  const std::string folded = prof.collapsed();
  EXPECT_NE(folded.find("prof.outer 2\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("prof.outer;prof.inner 2\n"), std::string::npos)
      << folded;
  bool outer_seen = false, inner_seen = false;
  for (const auto& f : prof.top_self(10)) {
    if (f.name == "prof.outer") {
      outer_seen = true;
      EXPECT_EQ(f.self, 2);
      EXPECT_EQ(f.total, 4);
    }
    if (f.name == "prof.inner") {
      inner_seen = true;
      EXPECT_EQ(f.self, 2);
      EXPECT_EQ(f.total, 2);
    }
  }
  EXPECT_TRUE(outer_seen);
  EXPECT_TRUE(inner_seen);
}

TEST(Profiler, SamplerRunsDuringParallelFaultSim) {
  // Exercises the mutex-free stack snapshot against concurrent span
  // push/pop from pool workers — the TSAN job runs this binary.
  const Netlist n = full_scan_netlist(cdfg::ewf(), 4);
  std::vector<Fault> faults = gl::enumerate_faults(n);
  const auto blocks = random_blocks(n, 16, 0xABCDEF);
  util::progress_reset();
  util::trace_stacks_enable();
  observe::Profiler prof;
  util::TelemetryOptions opts;
  opts.interval_ms = 5;
  opts.sampler = [&prof] { prof.sample(); };
  ASSERT_TRUE(util::telemetry_start(opts));
  gl::FaultSimOptions so;
  so.num_threads = 4;
  for (int rep = 0; rep < 5; ++rep)
    (void)gl::fault_coverage(n, blocks, faults, nullptr, so);
  util::telemetry_stop();
  util::trace_stacks_disable();
  EXPECT_GT(prof.ticks(), 0);
}
#endif  // TSYN_TRACE_NOOP

// -- telemetry must not change results ---------------------------------------

TEST(Telemetry, FaultSimResultsBitIdenticalOnVsOff) {
  const Netlist n = full_scan_netlist(cdfg::diffeq(), 4);
  std::vector<Fault> faults = gl::enumerate_faults(n);
  const auto blocks = random_blocks(n, 8, 0x5EED);

  util::progress_disable();
  std::vector<bool> det_off;
  const double cov_off = gl::fault_coverage(n, blocks, faults, &det_off);
  const gl::AtpgCampaign atpg_off =
      gl::run_combinational_atpg(n, faults, /*backtrack_limit=*/2000);

  const std::string path = testing::TempDir() + "tsyn_hb_identical.jsonl";
  util::progress_reset();
  util::TelemetryOptions opts;
  opts.heartbeat_path = path;
  opts.interval_ms = 1;
  ASSERT_TRUE(util::telemetry_start(opts));
  std::vector<bool> det_on;
  const double cov_on = gl::fault_coverage(n, blocks, faults, &det_on);
  const gl::AtpgCampaign atpg_on =
      gl::run_combinational_atpg(n, faults, /*backtrack_limit=*/2000);
  util::telemetry_stop();
  std::remove(path.c_str());

  EXPECT_EQ(cov_off, cov_on);
  EXPECT_EQ(det_off, det_on);
  ASSERT_EQ(atpg_off.status.size(), atpg_on.status.size());
  for (std::size_t i = 0; i < atpg_off.status.size(); ++i)
    EXPECT_EQ(atpg_off.status[i], atpg_on.status[i]) << "fault " << i;
  EXPECT_EQ(atpg_off.tests, atpg_on.tests);
  util::progress_reset();
}

// -- crash flush -------------------------------------------------------------

// The crash flush is deliberately non-async-signal-safe (it serializes
// artifacts on the way out of a dying process), so TSAN's signal-unsafe
// checker rejects it by design — skip the death test under that build.
#if defined(__SANITIZE_THREAD__)
#define TSYN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TSYN_TSAN_BUILD 1
#endif
#endif

#ifndef TSYN_TSAN_BUILD
using TelemetryDeathTest = ::testing::Test;

TEST(TelemetryDeathTest, CrashFlushWritesArtifactsOnFatalSignal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "tsyn_crash_flush.txt";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        util::install_crash_flush([path] {
          std::ofstream out(path);
          out << "flushed\n";
        });
        std::raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");
  // The child re-raised after flushing; the artifact must exist.
  std::ifstream in(path);
  std::string word;
  in >> word;
  EXPECT_EQ(word, "flushed");
  std::remove(path.c_str());
}
#endif  // TSYN_TSAN_BUILD

}  // namespace
}  // namespace tsyn
