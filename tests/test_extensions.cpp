// Tests for the extension layer: Verilog emission, scan chains + test
// time, transition/IDDQ grading (§7b future work), SCOAP, DOT/VCD export.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "cdfg/parser.h"
#include "cdfg/interp.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/delay_iddq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/scoap.h"
#include "gatelevel/vcd.h"
#include "hls/synthesis.h"
#include "rtl/dot.h"
#include "rtl/scan_chain.h"
#include "rtl/verilog.h"
#include "bist/test_plan.h"
#include "testability/boundary_scan.h"
#include "testability/scan_select.h"

namespace tsyn {
namespace {

hls::Synthesis synth(const cdfg::Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  return hls::synthesize(g, opts);
}

TEST(Verilog, EmitsWellFormedModule) {
  const hls::Synthesis s = synth(cdfg::diffeq());
  const std::string v =
      rtl::emit_verilog(s.rtl.datapath, s.rtl.controller);
  EXPECT_NE(v.find("module diffeq"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("ctl_state"), std::string::npos);
  // Every register declared.
  for (const auto& reg : s.rtl.datapath.regs)
    EXPECT_NE(v.find(" " + reg.name + ";"), std::string::npos) << reg.name;
  // Balanced begin/end at least structurally.
  EXPECT_EQ(std::count(v.begin(), v.end(), '('),
            std::count(v.begin(), v.end(), ')'));
}

TEST(Verilog, ScanChainPortsAppearWithScan) {
  cdfg::Cdfg g = cdfg::iir_biquad();
  hls::Synthesis s = synth(g);
  const auto vars = testability::select_scan_vars_boundary(g);
  testability::apply_scan(g, s.binding, vars, s.rtl.datapath);
  const std::string v =
      rtl::emit_verilog(s.rtl.datapath, s.rtl.controller);
  EXPECT_NE(v.find("scan_en"), std::string::npos);
  EXPECT_NE(v.find("assign scan_out"), std::string::npos);
}

TEST(Verilog, TestModeExportsControlPorts) {
  const hls::Synthesis s = synth(cdfg::tseng());
  rtl::VerilogOptions opts;
  opts.include_controller = false;
  const std::string v =
      rtl::emit_verilog(s.rtl.datapath, s.rtl.controller, opts);
  EXPECT_EQ(v.find("ctl_state"), std::string::npos);
  EXPECT_NE(v.find("input ld_"), std::string::npos);
}

TEST(ScanChain, CoversAllScanRegisters) {
  cdfg::Cdfg g = cdfg::ewf();
  hls::Synthesis s = synth(g);
  const auto vars = testability::select_scan_vars_loopcut(g);
  testability::apply_scan(g, s.binding, vars, s.rtl.datapath);
  const rtl::ScanChainPlan plan = rtl::build_scan_chain(s.rtl.datapath);
  EXPECT_EQ(plan.order.size(), s.rtl.datapath.scan_registers().size());
  int bits = 0;
  for (int r : plan.order) bits += s.rtl.datapath.regs[r].width;
  EXPECT_EQ(plan.chain_bits, bits);
}

TEST(ScanChain, TestTimeScalesWithChainLength) {
  rtl::ScanChainPlan small;
  small.chain_bits = 16;
  rtl::ScanChainPlan big;
  big.chain_bits = 64;
  EXPECT_LT(small.test_cycles(100), big.test_cycles(100));
  // Empty chain: purely combinational application.
  rtl::ScanChainPlan none;
  EXPECT_EQ(none.test_cycles(100), 100);
}

TEST(ScanChain, EmptyWhenNothingScanned) {
  const hls::Synthesis s = synth(cdfg::dct4());
  const rtl::ScanChainPlan plan = rtl::build_scan_chain(s.rtl.datapath);
  EXPECT_TRUE(plan.order.empty());
  EXPECT_EQ(plan.chain_bits, 0);
}

TEST(Transition, NeedsTwoPatterns) {
  // A buffer: STR at the output needs pattern pair (0 -> 1).
  gl::Netlist n;
  const int a = n.add_input("a");
  const int g = n.add_gate(gl::GateType::kBuf, {a});
  const int o = n.add_gate(gl::GateType::kNot, {g});
  n.mark_output(o);
  std::vector<gl::TransitionFault> faults{{a, true}};
  // Constant-1 stream never launches a rising transition.
  std::vector<std::vector<gl::Bits>> all1{{gl::Bits::all1()}};
  EXPECT_EQ(transition_fault_coverage(n, all1, faults), 0.0);
  // Alternating stream does.
  std::vector<std::vector<gl::Bits>> alt{
      {gl::Bits::known(0xAAAAAAAAAAAAAAAAULL)}};
  EXPECT_EQ(transition_fault_coverage(n, alt, faults), 1.0);
}

TEST(Transition, CoverageAtMostStuckAt) {
  const hls::Synthesis s = synth(cdfg::tseng());
  rtl::Datapath dp = s.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = 4;
  const gl::ExpandedDesign e = gl::expand_datapath(dp, x);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(e.netlist.primary_inputs().size()), 4, 7);
  const auto tf = gl::enumerate_transition_faults(e.netlist);
  const double t_cov = gl::transition_fault_coverage(e.netlist, blocks, tf);
  const auto sa = gl::enumerate_faults(e.netlist);
  const double s_cov = gl::fault_coverage(e.netlist, blocks, sa);
  EXPECT_GT(t_cov, 0.3);
  EXPECT_LE(t_cov, s_cov + 1e-9);
}

TEST(Iddq, ActivationOnlyBeatsStuckAt) {
  const hls::Synthesis s = synth(cdfg::iir_biquad());
  rtl::Datapath dp = s.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = 4;
  const gl::ExpandedDesign e = gl::expand_datapath(dp, x);
  const auto faults = gl::enumerate_faults(e.netlist);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(e.netlist.primary_inputs().size()), 2, 3);
  const double iddq = gl::iddq_fault_coverage(e.netlist, blocks, faults);
  const double sa = gl::fault_coverage(e.netlist, blocks, faults);
  EXPECT_GE(iddq, sa - 1e-9);  // no propagation requirement
  EXPECT_GT(iddq, 0.95);
}

TEST(Scoap, InverterChain) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int g1 = n.add_gate(gl::GateType::kNot, {a});
  const int g2 = n.add_gate(gl::GateType::kNot, {g1});
  n.mark_output(g2);
  const gl::Scoap s = gl::compute_scoap(n);
  EXPECT_EQ(s.cc0[a], 1);
  EXPECT_EQ(s.cc1[g1], 2);  // needs a=0
  EXPECT_EQ(s.co[g2], 0);
  EXPECT_EQ(s.co[a], 2);
}

TEST(Scoap, AndGateAsymmetry) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(gl::GateType::kAnd, {a, b});
  n.mark_output(g);
  const gl::Scoap s = gl::compute_scoap(n);
  EXPECT_EQ(s.cc1[g], 3);  // both inputs 1
  EXPECT_EQ(s.cc0[g], 2);  // one input 0
  EXPECT_EQ(s.co[a], 2);   // side input must be 1
}

TEST(Scoap, DeepLogicHarderThanShallow) {
  gl::Netlist n;
  const gl::Word a = gl::make_input_word(n, "a", 8);
  const gl::Word b = gl::make_input_word(n, "b", 8);
  const gl::Word p = gl::array_multiply(n, a, b);
  for (int bit : p) n.mark_output(bit);
  const gl::Scoap s = gl::compute_scoap(n);
  // High product bits are harder to control than low ones.
  EXPECT_LT(s.cc1[p[0]], s.cc1[p[7]]);
}

TEST(Dot, CdfgExportMentionsEverything) {
  const cdfg::Cdfg g = cdfg::diffeq();
  const std::string dot = cdfg::to_dot(g, {g.find_var("x")});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("xl"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // back edges
  EXPECT_NE(dot.find("color=red"), std::string::npos);     // highlight
}

TEST(Dot, DatapathAndSgraphExport) {
  const hls::Synthesis s = synth(cdfg::iir_biquad());
  const std::string d1 = rtl::datapath_to_dot(s.rtl.datapath);
  EXPECT_NE(d1.find("trapezium"), std::string::npos);  // FUs present
  const std::string d2 = rtl::sgraph_to_dot(s.rtl.datapath);
  EXPECT_NE(d2.find("->"), std::string::npos);
}

TEST(Vcd, DumpsTransitions) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int q = n.add_dff(-1, "q");
  n.set_dff_input(q, a);
  n.mark_output(q);
  std::vector<std::vector<gl::Bits>> frames{
      {gl::Bits::all1()}, {gl::Bits::all0()}, {gl::Bits::all1()}};
  std::vector<gl::Bits> init{gl::Bits::all0()};
  const auto trace = gl::simulate_sequence(n, frames, &init);
  const std::string vcd = gl::trace_to_vcd(n, trace);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
}

TEST(ControlFlow, GuardedOpsShareAnAluInTheSameStep) {
  // §7a: control-flow behaviors. The two guarded updates are mutually
  // exclusive, so binding may (and does) put them on one ALU even when
  // they occupy the same control step.
  const cdfg::Cdfg g = cdfg::conditional_update();
  const cdfg::OpId up = g.var(g.find_var("up")).def_op;
  const cdfg::OpId dn = g.var(g.find_var("dn")).def_op;

  const hls::Schedule s = hls::list_schedule(g, {});
  EXPECT_EQ(s.step_of_op[up], s.step_of_op[dn]);  // both ready at step 0
  EXPECT_TRUE(hls::ops_compatible(g, s, up, dn));

  const hls::Binding b = hls::make_binding(g, s);
  EXPECT_EQ(b.fu_of_op[up], b.fu_of_op[dn]);
  int alus = 0;
  for (auto t : b.fu_type)
    if (t == cdfg::FuType::kAlu) ++alus;
  EXPECT_EQ(alus, 1);
}

TEST(ControlFlow, InterpreterFollowsTheCondition) {
  const cdfg::Cdfg g = cdfg::conditional_update();
  const std::vector<cdfg::VarId> pis = g.inputs();  // d, mu, c
  // c=1 three times, then c=0 twice: k = 0 +mu +mu +mu -mu -mu = mu.
  std::vector<std::vector<std::uint64_t>> frames{
      {2, 5, 1}, {2, 5, 1}, {2, 5, 1}, {2, 5, 0}, {2, 5, 0}};
  const auto trace = cdfg::execute(g, frames);
  const cdfg::VarId kn = g.find_var("kn");
  EXPECT_EQ(trace[2][kn], 15u);
  EXPECT_EQ(trace[4][kn], 5u);
}

TEST(ControlFlow, UnguardedSameStepOpsStillConflict) {
  // Two adds without guards in one step may NOT share.
  cdfg::Cdfg g;
  const auto a = g.add_input("a");
  const auto t1 = g.add_op(cdfg::OpKind::kAdd, "t1", {a, a});
  const auto t2 = g.add_op(cdfg::OpKind::kAdd, "t2", {a, a});
  g.mark_output(t1);
  g.mark_output(t2);
  hls::Schedule s;
  s.num_steps = 1;
  s.step_of_op = {0, 0};
  EXPECT_FALSE(hls::ops_compatible(g, s, 0, 1));
  (void)t1;
  (void)t2;
}

TEST(ScoapGuidance, SameVerdictsFewerOrEqualBacktracks) {
  gl::Netlist n;
  const gl::Word a = gl::make_input_word(n, "a", 6);
  const gl::Word b = gl::make_input_word(n, "b", 6);
  const gl::Word p = gl::array_multiply(n, a, b);
  for (int bit : p) n.mark_output(bit);
  const auto faults = gl::enumerate_faults(n);

  gl::Podem plain(n);
  gl::Podem guided(n);
  guided.use_scoap_guidance(true);
  long plain_bt = 0;
  long guided_bt = 0;
  int disagreements = 0;
  for (std::size_t i = 0; i < faults.size(); i += 4) {
    const gl::AtpgResult r1 = plain.generate(faults[i], 3000);
    const gl::AtpgResult r2 = guided.generate(faults[i], 3000);
    plain_bt += r1.stats.backtracks;
    guided_bt += r2.stats.backtracks;
    if (r1.status != r2.status) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0);  // guidance must not change testability
  EXPECT_LE(guided_bt, plain_bt + 16);  // and never blow up the search
}

TEST(BoundaryScan, RingCoversAllIo) {
  hls::Synthesis s = synth(cdfg::diffeq());
  const int regs_before = s.rtl.datapath.num_regs();
  const testability::BoundaryScanResult bs =
      testability::insert_boundary_scan(s.rtl.datapath);
  EXPECT_EQ(bs.input_cells,
            static_cast<int>(s.rtl.datapath.primary_inputs.size()));
  EXPECT_EQ(bs.output_cells,
            static_cast<int>(s.rtl.datapath.primary_outputs.size()));
  EXPECT_EQ(s.rtl.datapath.num_regs(),
            regs_before + bs.input_cells + bs.output_cells);
  EXPECT_GT(bs.area_overhead, 0.0);
  EXPECT_LT(bs.area_overhead, 0.6);
  // No FU port reads a pad directly any more.
  for (const auto& fu : s.rtl.datapath.fus)
    for (const auto& port : fu.port_drivers)
      for (const auto& src : port)
        EXPECT_NE(src.kind, rtl::Source::Kind::kPrimaryInput);
}

TEST(BoundaryScan, CellsAreScannable) {
  hls::Synthesis s = synth(cdfg::tseng());
  const testability::BoundaryScanResult bs =
      testability::insert_boundary_scan(s.rtl.datapath);
  for (int r : bs.ring)
    EXPECT_EQ(s.rtl.datapath.regs[r].test_kind, rtl::TestRegKind::kScan);
}

TEST(TestPlan, CoversEveryModuleOnce) {
  const cdfg::Cdfg g = cdfg::diffeq();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}});
  const hls::Binding b = hls::make_binding(g, s);
  const bist::SessionAnalysis sessions = bist::schedule_test_sessions(g, b);
  const bist::TestPlan plan = bist::build_test_plan(g, b, sessions);
  ASSERT_EQ(static_cast<int>(plan.sessions.size()), sessions.num_sessions);
  int modules = 0;
  for (const auto& sp : plan.sessions) {
    modules += static_cast<int>(sp.modules.size());
    EXPECT_FALSE(sp.tpgr_regs.empty());
    EXPECT_FALSE(sp.sr_regs.empty());
  }
  EXPECT_EQ(modules, b.num_fus());
}

TEST(TestPlan, ConflictFreeScheduleHasNoCbilbos) {
  const cdfg::Cdfg g = cdfg::iir_biquad();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}});
  const hls::Binding b = bist::conflict_aware_binding(g, s);
  const bist::SessionAnalysis sessions = bist::schedule_test_sessions(g, b);
  const bist::TestPlan plan = bist::build_test_plan(g, b, sessions);
  const hls::RtlDesign rtl = hls::build_rtl(g, s, b);
  // Renders without crashing and names every section.
  const std::string text = plan.to_string(rtl.datapath);
  EXPECT_NE(text.find("session 0"), std::string::npos);
}

TEST(WeightedBist, LiftsRandomPatternResistantCoverage) {
  // A deep AND tree: output sa0 activates with probability 2^-12 under
  // unbiased patterns; weights derived from deterministic tests raise it.
  gl::Netlist n;
  std::vector<int> ins;
  for (int i = 0; i < 12; ++i)
    ins.push_back(n.add_input("i" + std::to_string(i)));
  const int g = n.add_gate(gl::GateType::kAnd, ins);
  n.mark_output(g);
  const auto faults = gl::enumerate_faults(n);

  const auto plain = gl::lfsr_pattern_blocks(12, 2, 5);  // 128 patterns
  const double plain_cov = gl::fault_coverage(n, plain, faults);

  const gl::AtpgCampaign campaign = gl::run_combinational_atpg(n, faults);
  const auto weights = gl::weights_from_tests(campaign.tests, 12);
  for (double w : weights) EXPECT_GT(w, 0.5);  // tests skew toward 1s
  const auto weighted = gl::weighted_pattern_blocks(weights, 2, 5);
  const double weighted_cov = gl::fault_coverage(n, weighted, faults);
  EXPECT_GT(weighted_cov, plain_cov);
  EXPECT_GT(weighted_cov, 0.9);
}

TEST(WeightedBist, WeightsClampedAndDefaulted) {
  const auto none = gl::weights_from_tests({}, 4);
  for (double w : none) EXPECT_DOUBLE_EQ(w, 0.5);
  // All-ones tests clamp to 0.9.
  std::vector<std::vector<gl::V>> tests{{gl::V::k1, gl::V::k0, gl::V::kX}};
  const auto w = gl::weights_from_tests(tests, 3);
  EXPECT_DOUBLE_EQ(w[0], 0.9);
  EXPECT_DOUBLE_EQ(w[1], 0.1);
  EXPECT_DOUBLE_EQ(w[2], 0.5);
}

TEST(DataFiles, ShipExamplesParseAndSynthesize) {
  for (const char* path :
       {"../data/correlator.cdfg", "../data/gradient_step.cdfg",
        "data/correlator.cdfg", "data/gradient_step.cdfg"}) {
    std::ifstream in(path);
    if (!in) continue;  // depends on the working directory
    std::stringstream buf;
    buf << in.rdbuf();
    const cdfg::Cdfg g = cdfg::parse_cdfg(buf.str());
    EXPECT_GT(g.num_ops(), 0);
    EXPECT_NO_THROW(synth(g));
    return;  // one directory hit is enough
  }
  GTEST_SKIP() << "data files not reachable from this working directory";
}

TEST(Verilog, AllBenchmarksEmit) {
  for (const cdfg::Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis s = synth(g);
    const std::string v =
        rtl::emit_verilog(s.rtl.datapath, s.rtl.controller);
    EXPECT_NE(v.find("module " + g.name()), std::string::npos) << g.name();
    EXPECT_NE(v.find("endmodule"), std::string::npos) << g.name();
  }
}

TEST(Verilog, BoundaryScanDesignEmits) {
  hls::Synthesis s = synth(cdfg::tseng());
  testability::insert_boundary_scan(s.rtl.datapath);
  const std::string v =
      rtl::emit_verilog(s.rtl.datapath, s.rtl.controller);
  EXPECT_NE(v.find("BS_"), std::string::npos);
  EXPECT_NE(v.find("scan_out"), std::string::npos);
}

}  // namespace
}  // namespace tsyn
