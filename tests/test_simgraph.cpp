// The compiled SoA simulation core: SimGraph lowering must mirror the
// Netlist exactly, the levelized engines must match a direct reference
// evaluation bit for bit, the wide-lane (256/512) engines must reproduce
// serial 64-lane grading — detected set AND first-detecting pattern — and
// the work-stealing shard must be invisible in every result, ledger JSON
// included.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <set>
#include <string>
#include <vector>

#include "gatelevel/bistgen.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/netlist.h"
#include "gatelevel/simgraph.h"
#include "gatelevel/widebits.h"
#include "observe/ledger.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tsyn {
namespace {

// Random combinational netlist (the same shape the property sweeps use).
gl::Netlist random_netlist(std::uint64_t seed, int gates = 80,
                           int inputs = 8) {
  util::Rng rng(seed);
  gl::Netlist n;
  std::vector<int> nodes;
  for (int i = 0; i < inputs; ++i)
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  for (int i = 0; i < gates; ++i) {
    static constexpr gl::GateType kTypes[] = {
        gl::GateType::kAnd,  gl::GateType::kOr,  gl::GateType::kNand,
        gl::GateType::kNor,  gl::GateType::kXor, gl::GateType::kXnor,
        gl::GateType::kNot,  gl::GateType::kMux};
    const gl::GateType t = kTypes[rng.pick_index(8)];
    const int arity = t == gl::GateType::kNot   ? 1
                      : t == gl::GateType::kMux ? 3
                                                : 2;
    std::vector<int> fanins;
    for (int a = 0; a < arity; ++a)
      fanins.push_back(nodes[rng.pick_index(nodes.size())]);
    nodes.push_back(n.add_gate(t, fanins));
  }
  for (int i = 0; i < 6; ++i)
    n.mark_output(nodes[nodes.size() - 1 - i]);
  n.validate();
  return n;
}

// Direct Netlist-walking frame evaluation — the shape simulate_frame had
// before the SoA port, kept here as the equivalence oracle.
void reference_frame(const gl::Netlist& n, std::vector<gl::Bits>& values) {
  gl::Bits fanin_vals[16];
  for (int id : n.topo_order()) {
    const gl::Node& node = n.node(id);
    if (node.type == gl::GateType::kInput || node.type == gl::GateType::kDff)
      continue;
    for (std::size_t i = 0; i < node.fanins.size(); ++i)
      fanin_vals[i] = values[node.fanins[i]];
    values[id] = gl::eval_gate(node.type, fanin_vals,
                               static_cast<int>(node.fanins.size()));
  }
}

std::vector<gl::Bits> random_pi_values(const gl::Netlist& n,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<gl::Bits> vals(n.num_nodes(), gl::Bits::unknown());
  for (int pi : n.primary_inputs()) {
    gl::Bits b;
    b.v = rng.next_u64();
    b.x = (rng.next_u64() & rng.next_u64() & rng.next_u64());  // sparse unknowns
    b.v &= ~b.x;
    vals[pi] = b;
  }
  return vals;
}

TEST(SimGraph, LoweringMirrorsNetlist) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const gl::Netlist n = random_netlist(seed, 120, 10);
    const gl::SimGraph& g = gl::SimGraph::of(n);
    ASSERT_EQ(g.num_nodes(), n.num_nodes());

    std::set<int> order_seen;
    for (int pos = 0; pos < g.num_nodes(); ++pos) {
      const int id = g.order()[pos];
      EXPECT_TRUE(order_seen.insert(id).second);
      EXPECT_EQ(g.pos_of()[id], pos);
    }

    for (int id = 0; id < n.num_nodes(); ++id) {
      const gl::Node& node = n.node(id);
      EXPECT_EQ(g.type(id), node.type);
      ASSERT_EQ(g.num_fanins(id), static_cast<int>(node.fanins.size()));
      for (int i = 0; i < g.num_fanins(id); ++i)
        EXPECT_EQ(g.fanin()[g.fanin_off()[id] + i], node.fanins[i]);

      // Levelization: sources at 0, gates one past their deepest fanin.
      if (node.type == gl::GateType::kInput ||
          node.type == gl::GateType::kDff || node.fanins.empty()) {
        EXPECT_EQ(g.level_of()[id], 0);
      } else {
        int expect = 0;
        for (int f : node.fanins)
          expect = std::max(expect, g.level_of()[f] + 1);
        EXPECT_EQ(g.level_of()[id], expect);
      }
      const int lvl = g.level_of()[id];
      EXPECT_GE(g.pos_of()[id], g.level_off()[lvl]);
      EXPECT_LT(g.pos_of()[id], g.level_off()[lvl + 1]);

      // Fanout CSR: comb edges only, strictly deeper levels.
      for (int k = g.fanout_off()[id]; k < g.fanout_off()[id + 1]; ++k) {
        const int s = g.fanout()[k];
        EXPECT_NE(g.type(s), gl::GateType::kDff);
        EXPECT_GT(g.level_of()[s], g.level_of()[id]);
        bool consumes = false;
        for (int f : n.node(s).fanins) consumes |= (f == id);
        EXPECT_TRUE(consumes);
      }
    }

    // Edge totals: every comb pin appears exactly once in the fanout CSR.
    int comb_pins = 0;
    for (int id = 0; id < n.num_nodes(); ++id)
      if (n.node(id).type != gl::GateType::kDff)
        comb_pins += static_cast<int>(n.node(id).fanins.size());
    EXPECT_EQ(g.fanout_off()[n.num_nodes()], comb_pins);
  }
}

TEST(SimGraph, SimulateFrameMatchesReference) {
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL, 24ULL}) {
    const gl::Netlist n = random_netlist(seed, 150, 12);
    for (std::uint64_t vs = 0; vs < 4; ++vs) {
      std::vector<gl::Bits> got = random_pi_values(n, seed * 977 + vs);
      std::vector<gl::Bits> want = got;
      gl::simulate_frame(n, got);
      reference_frame(n, want);
      for (int id = 0; id < n.num_nodes(); ++id) {
        EXPECT_EQ(got[id].v, want[id].v) << "node " << id;
        EXPECT_EQ(got[id].x, want[id].x) << "node " << id;
      }
    }
  }
}

TEST(SimGraph, CacheRebuildsAfterStructuralEdit) {
  gl::Netlist n = random_netlist(31, 60, 8);
  const gl::SimGraph* first = &gl::SimGraph::of(n);
  EXPECT_EQ(first, &gl::SimGraph::of(n));  // cached, not rebuilt

  const int before = n.num_nodes();
  const int g0 = n.primary_inputs()[0];
  const int g1 = n.primary_inputs()[1];
  const int added = n.add_gate(gl::GateType::kXor, {g0, g1});
  n.mark_output(added);
  const gl::SimGraph& rebuilt = gl::SimGraph::of(n);
  EXPECT_GT(rebuilt.num_nodes(), before);
  EXPECT_EQ(rebuilt.num_nodes(), n.num_nodes());

  // And the rebuilt graph still simulates correctly.
  std::vector<gl::Bits> got = random_pi_values(n, 77);
  std::vector<gl::Bits> want = got;
  gl::simulate_frame(n, got);
  reference_frame(n, want);
  for (int id = 0; id < n.num_nodes(); ++id) {
    EXPECT_EQ(got[id].v, want[id].v);
    EXPECT_EQ(got[id].x, want[id].x);
  }
}

// Wide grading must reproduce serial 64-lane grading exactly: the same
// detected set and the same first-detecting pattern, including campaigns
// whose block count does not divide the super-block width (padding lanes).
TEST(SimGraph, WideCoverageMatchesSerial64) {
  for (std::uint64_t seed : {41ULL, 42ULL}) {
    const gl::Netlist n = random_netlist(seed, 160, 10);
    const auto faults = gl::enumerate_faults(n);
    for (int nblocks : {1, 3, 8, 9}) {  // 9: pads both W=4 and W=8
      const auto blocks = gl::lfsr_pattern_blocks(
          static_cast<int>(n.primary_inputs().size()), nblocks, seed);
      gl::FaultSimOptions serial;
      serial.num_threads = 1;
      std::vector<bool> det64;
      const double cov64 = gl::fault_coverage(n, blocks, faults, &det64,
                                              serial);
      for (int lanes : {256, 512}) {
        gl::FaultSimOptions wide = serial;
        wide.lanes = lanes;
        std::vector<bool> detw;
        const double covw = gl::fault_coverage(n, blocks, faults, &detw,
                                               wide);
        EXPECT_EQ(covw, cov64) << "lanes " << lanes;
        EXPECT_EQ(detw, det64) << "lanes " << lanes;
      }
    }
  }
}

TEST(SimGraph, WideFirstDetectionPatternsMatchSerial64) {
  const gl::Netlist n = random_netlist(43, 160, 10);
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 6, 43);

  auto first_detects = [&](int lanes) {
    observe::ledger_reset();
    observe::ledger_enable();
    gl::FaultSimOptions o;
    o.num_threads = 1;
    o.lanes = lanes;
    gl::fault_coverage(n, blocks, faults, nullptr, o);
    observe::ledger_disable();
    const observe::LedgerSnapshot snap = observe::ledger_snapshot();
    observe::ledger_reset();
    std::vector<std::int64_t> firsts;
    for (const auto& j : snap.journeys)
      firsts.push_back(j.first_detect_pattern);
    return firsts;
  };
  const auto serial = first_detects(64);
  EXPECT_EQ(first_detects(256), serial);
  EXPECT_EQ(first_detects(512), serial);
}

TEST(SimGraph, WideDetectionMasksMatchSerial64) {
  const gl::Netlist n = random_netlist(44, 140, 9);
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 5, 44);
  gl::FaultSimOptions o;
  o.num_threads = 1;
  std::vector<std::uint64_t> m64;
  gl::detection_masks(n, blocks, faults, m64, o);
  ASSERT_EQ(m64.size(), faults.size() * blocks.size());
  for (int lanes : {256, 512}) {
    gl::FaultSimOptions wide = o;
    wide.lanes = lanes;
    std::vector<std::uint64_t> mw;
    gl::detection_masks(n, blocks, faults, mw, wide);
    EXPECT_EQ(mw, m64) << "lanes " << lanes;
  }
}

// TSYN_FORCE_SCALAR must not change any result — on SIMD builds this is
// the scalar-vs-vector differential; on scalar builds it proves the
// override path is at least wired through.
TEST(SimGraph, ForcedScalarBackendIsBitIdentical) {
  const gl::Netlist n = random_netlist(45, 150, 10);
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 8, 45);
  gl::FaultSimOptions o;
  o.num_threads = 1;
  o.lanes = 512;
  std::vector<std::uint64_t> native;
  gl::detection_masks(n, blocks, faults, native, o);

  ::setenv("TSYN_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(gl::active_simd_backend(), gl::SimdBackend::kScalar);
  std::vector<std::uint64_t> scalar;
  gl::detection_masks(n, blocks, faults, scalar, o);
  ::unsetenv("TSYN_FORCE_SCALAR");

  EXPECT_EQ(scalar, native);
}

// The work-stealing shard must be invisible: coverage, detected set, and
// the ledger JSON byte-identical at every thread count, narrow and wide.
TEST(SimGraph, ThreadCountInvarianceIncludingLedger) {
  const gl::Netlist n = random_netlist(46, 160, 10);
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 4, 46);

  for (int lanes : {64, 512}) {
    std::string base_json;
    std::vector<bool> base_det;
    for (int threads : {1, 2, 8}) {
      gl::FaultSimOptions o;
      o.num_threads = threads;
      o.lanes = lanes;
      observe::ledger_reset();
      observe::ledger_enable();
      std::vector<bool> det;
      gl::fault_coverage(n, blocks, faults, &det, o);
      observe::ledger_disable();
      const std::string json = observe::ledger_to_json();
      observe::ledger_reset();
      if (threads == 1) {
        base_json = json;
        base_det = det;
      } else {
        EXPECT_EQ(det, base_det) << "lanes " << lanes << " threads "
                                 << threads;
        EXPECT_EQ(json, base_json) << "lanes " << lanes << " threads "
                                   << threads;
      }
    }
  }
}

// run_chunked: every index exactly once, slot ids in range, exceptions
// rethrown — across chunk sizes that do and don't divide the range.
TEST(ThreadPool, RunChunkedCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  for (int count : {1, 7, 64, 1000}) {
    for (int chunk : {1, 3, 16, 2000}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0);
      pool.run_chunked(count, 4, chunk, [&](int i, int slot) {
        ASSERT_GE(i, 0);
        ASSERT_LT(i, count);
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 4);
        hits[i].fetch_add(1);
      });
      for (int i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "count " << count << " chunk "
                                     << chunk << " index " << i;
    }
  }
}

TEST(ThreadPool, RunChunkedRethrowsJobExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunked(100, 4, 8,
                                [&](int i, int) {
                                  if (i == 37) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

// Satellite regression: reset_work_counters must clear the last-propagate
// attribution counter too, not just the totals.
TEST(FaultPropagator, ResetClearsLastPropagateEvents) {
  const gl::Netlist n = random_netlist(47, 80, 8);
  const auto faults = gl::enumerate_faults(n);
  ASSERT_FALSE(faults.empty());
  std::vector<gl::Bits> good = random_pi_values(n, 47);
  gl::simulate_frame(n, good);

  gl::FaultPropagator prop(n);
  std::uint64_t mask = 0;
  for (const auto& f : faults) {
    mask |= prop.propagate(f, good);
    if (prop.last_propagate_events() > 0) break;
  }
  (void)mask;
  ASSERT_GT(prop.last_propagate_events(), 0);
  prop.reset_work_counters();
  EXPECT_EQ(prop.events_processed(), 0);
  EXPECT_EQ(prop.faults_propagated(), 0);
  EXPECT_EQ(prop.last_propagate_events(), 0);
}

}  // namespace
}  // namespace tsyn
