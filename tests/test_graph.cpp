#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/clique_partition.h"
#include "graph/coloring.h"
#include "graph/cycles.h"
#include "graph/digraph.h"
#include "graph/interval.h"
#include "graph/matching.h"
#include "graph/mfvs.h"
#include "graph/paths.h"
#include "graph/scc.h"
#include "util/rng.h"

namespace tsyn::graph {
namespace {

Digraph ring(int n) {
  Digraph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Digraph chain(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Digraph random_digraph(int n, double p, std::uint64_t seed) {
  util::Rng rng(seed);
  Digraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (u != v && rng.next_bool(p)) g.add_edge(u, v);
  return g;
}

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(2), 1);
}

TEST(Digraph, AddEdgeUniqueSuppressesDuplicates) {
  Digraph g(2);
  g.add_edge_unique(0, 1);
  g.add_edge_unique(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, InducedSubgraphRemapsIds) {
  Digraph g = chain(4);
  std::vector<bool> keep{true, false, true, true};
  std::vector<NodeId> map;
  const Digraph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], -1);
  EXPECT_TRUE(sub.has_edge(map[2], map[3]));
  EXPECT_EQ(sub.num_edges(), 1u);  // 0->1 and 1->2 dropped with node 1
}

TEST(Digraph, ReversedSwapsDirections) {
  Digraph g = chain(3);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
}

TEST(Scc, ChainIsAllTrivial) {
  const SccResult scc = strongly_connected_components(chain(5));
  EXPECT_EQ(scc.num_components, 5);
}

TEST(Scc, RingIsOneComponent) {
  const SccResult scc = strongly_connected_components(ring(6));
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_EQ(scc.members[0].size(), 6u);
}

TEST(Scc, MixedGraph) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // {1,2} cycle
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[0], scc.component[1]);
}

TEST(Scc, CondensationIsAcyclic) {
  const Digraph g = random_digraph(20, 0.15, 5);
  const SccResult scc = strongly_connected_components(g);
  const Digraph c = condensation(g, scc);
  EXPECT_TRUE(is_acyclic(c));
}

TEST(Scc, TarjanReverseTopologicalNumbering) {
  // Tarjan numbers a component before any component that reaches it.
  const Digraph g = chain(4);
  const SccResult scc = strongly_connected_components(g);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v : g.successors(u))
      EXPECT_GT(scc.component[u], scc.component[v]);
}

TEST(Scc, SelfLoopCounts) {
  Digraph g(2);
  g.add_edge(0, 0);
  EXPECT_FALSE(is_acyclic(g));
  EXPECT_TRUE(is_acyclic(g, /*ignore_self_loops=*/true));
  const auto cyclic = nodes_on_cycles(g);
  ASSERT_EQ(cyclic.size(), 1u);
  EXPECT_EQ(cyclic[0], 0);
}

TEST(Cycles, RingHasOneCycle) {
  const auto cycles = elementary_cycles(ring(5));
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 5u);
}

TEST(Cycles, TwoTriangleGraph) {
  Digraph g(5);
  // Two triangles sharing node 0.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  const auto cycles = elementary_cycles(g);
  EXPECT_EQ(cycles.size(), 2u);
}

TEST(Cycles, CompleteGraphCycleCount) {
  // K4 (directed both ways) has 6+8+6=20 elementary cycles.
  Digraph g(4);
  for (int u = 0; u < 4; ++u)
    for (int v = 0; v < 4; ++v)
      if (u != v) g.add_edge(u, v);
  EXPECT_EQ(elementary_cycles(g).size(), 20u);
}

TEST(Cycles, SelfLoopIsLengthOne) {
  Digraph g(1);
  g.add_edge(0, 0);
  const auto cycles = elementary_cycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 1u);
}

TEST(Cycles, BoundRespected) {
  Digraph g(6);
  for (int u = 0; u < 6; ++u)
    for (int v = 0; v < 6; ++v)
      if (u != v) g.add_edge(u, v);
  EXPECT_LE(elementary_cycles(g, 10).size(), 10u);
}

TEST(Cycles, SortedShortestFirst) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const auto cycles = elementary_cycles(g);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_LE(cycles[0].size(), cycles[1].size());
}

TEST(Paths, TopologicalOrderOnDag) {
  const auto order = topological_order(chain(5));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->front(), 0);
  EXPECT_EQ(order->back(), 4);
}

TEST(Paths, TopologicalOrderRejectsCycle) {
  EXPECT_FALSE(topological_order(ring(3)).has_value());
}

TEST(Paths, BfsDistances) {
  const auto d = bfs_distances(chain(4), {0});
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[3], 3);
  const auto d2 = bfs_distances(chain(4), {2});
  EXPECT_EQ(d2[0], -1);  // unreachable backwards
}

TEST(Paths, DagLongestDistances) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 3);  // short path
  g.add_edge(0, 2);
  const auto d = dag_longest_distances(g, {0});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)[3], 2);  // via 1
}

TEST(Paths, SequentialDepthIgnoresSelfLoops) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 1);
  const auto depth = sequential_depth(g);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 2);
}

TEST(Paths, SequentialDepthUndefinedWithRealLoop) {
  EXPECT_FALSE(sequential_depth(ring(3)).has_value());
}

TEST(Mfvs, GreedyBreaksAllLoops) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Digraph g = random_digraph(15, 0.2, seed);
    const auto fvs = greedy_mfvs(g);
    EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
  }
}

TEST(Mfvs, ExactNoLargerThanGreedy) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const Digraph g = random_digraph(12, 0.18, seed);
    const auto greedy = greedy_mfvs(g);
    const auto exact = exact_mfvs(g);
    EXPECT_TRUE(is_feedback_vertex_set(g, exact));
    EXPECT_LE(exact.size(), greedy.size());
  }
}

TEST(Mfvs, RingNeedsExactlyOne) {
  const auto fvs = exact_mfvs(ring(7));
  EXPECT_EQ(fvs.size(), 1u);
}

TEST(Mfvs, SelfLoopsIgnoredByDefault) {
  Digraph g(2);
  g.add_edge(0, 0);
  EXPECT_TRUE(exact_mfvs(g).empty());
  EXPECT_EQ(exact_mfvs(g, {.ignore_self_loops = false}).size(), 1u);
}

TEST(Mfvs, TwoDisjointRings) {
  Digraph g(6);
  for (int i = 0; i < 3; ++i) g.add_edge(i, (i + 1) % 3);
  for (int i = 0; i < 3; ++i) g.add_edge(3 + i, 3 + (i + 1) % 3);
  EXPECT_EQ(exact_mfvs(g).size(), 2u);
}

TEST(Mfvs, AcyclicNeedsNone) {
  EXPECT_TRUE(greedy_mfvs(chain(10)).empty());
  EXPECT_TRUE(exact_mfvs(chain(10)).empty());
}

TEST(Coloring, TriangleNeedsThree) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const Coloring c = dsatur_coloring(g);
  EXPECT_EQ(c.num_colors, 3);
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, BipartiteNeedsTwo) {
  UndirectedGraph g(6);
  for (int a = 0; a < 3; ++a)
    for (int b = 3; b < 6; ++b) g.add_edge(a, b);
  const Coloring c = dsatur_coloring(g);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, EmptyGraphOneColorPerIsolatedNodeSetIsOne) {
  UndirectedGraph g(4);
  const Coloring c = dsatur_coloring(g);
  EXPECT_EQ(c.num_colors, 1);
}

TEST(Coloring, SequentialRespectsOrder) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  const Coloring c = sequential_coloring(g, {2, 1, 0});
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, RandomGraphsProper) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    UndirectedGraph g(20);
    for (int u = 0; u < 20; ++u)
      for (int v = u + 1; v < 20; ++v)
        if (rng.next_bool(0.3)) g.add_edge(u, v);
    EXPECT_TRUE(is_proper_coloring(g, dsatur_coloring(g)));
  }
}

TEST(Coloring, ComplementHasComplementEdges) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  const UndirectedGraph c = g.complement();
  EXPECT_FALSE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 2));
  EXPECT_TRUE(c.has_edge(1, 2));
}

TEST(Interval, OverlapBasic) {
  EXPECT_TRUE(lifetimes_overlap({0, 3}, {2, 5}, 6));
  EXPECT_FALSE(lifetimes_overlap({0, 2}, {2, 4}, 6));
}

TEST(Interval, WrappingOverlap) {
  // [4,6) wrap to [0,1) vs [0,2): overlap at slot 0.
  EXPECT_TRUE(lifetimes_overlap({4, 1}, {0, 2}, 6));
  // [4,6)+[0,1) vs [2,4): no overlap.
  EXPECT_FALSE(lifetimes_overlap({4, 1}, {2, 4}, 6));
}

TEST(Interval, EqualBirthDeathWrapsWholeLoop) {
  EXPECT_TRUE(lifetimes_overlap({2, 2}, {5, 6}, 8));
}

TEST(Interval, LeftEdgeMinimalOnDisjoint) {
  std::vector<Interval> v{{0, 2}, {2, 4}, {4, 6}};
  int regs = 0;
  const auto assign = left_edge_assign(v, 6, &regs);
  EXPECT_EQ(regs, 1);
  EXPECT_EQ(assign[0], assign[1]);
}

TEST(Interval, LeftEdgeConflictsSeparate) {
  std::vector<Interval> v{{0, 4}, {1, 3}, {2, 5}};
  int regs = 0;
  const auto assign = left_edge_assign(v, 6, &regs);
  EXPECT_EQ(regs, 3);
  (void)assign;
}

TEST(Interval, LeftEdgeValidity) {
  util::Rng rng(5);
  std::vector<Interval> v;
  for (int i = 0; i < 30; ++i) {
    const int b = rng.next_int(0, 7);
    const int d = rng.next_int(0, 7);
    v.push_back({b, d == b ? (b + 1) % 8 : d});
  }
  int regs = 0;
  const auto assign = left_edge_assign(v, 8, &regs);
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      if (assign[i] == assign[j])
        EXPECT_FALSE(lifetimes_overlap(v[i], v[j], 8))
            << "intervals " << i << " and " << j;
}

TEST(CliquePartition, CompatibleTriangleMergesToOne) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const CliquePartition p = clique_partition(g);
  EXPECT_EQ(p.cliques.size(), 1u);
  EXPECT_TRUE(is_valid_clique_partition(g, p));
}

TEST(CliquePartition, IndependentSetStaysSeparate) {
  UndirectedGraph g(4);
  const CliquePartition p = clique_partition(g);
  EXPECT_EQ(p.cliques.size(), 4u);
  EXPECT_TRUE(is_valid_clique_partition(g, p));
}

TEST(CliquePartition, PathGraphPairsUp) {
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const CliquePartition p = clique_partition(g);
  EXPECT_EQ(p.cliques.size(), 2u);
  EXPECT_TRUE(is_valid_clique_partition(g, p));
}

TEST(CliquePartition, WeightSteersMerge) {
  // Square: 0-1, 1-2, 2-3, 3-0. Unweighted may pair either way; a weight
  // pulling (0,1) and (2,3) together must be honored.
  UndirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto weight = [](NodeId u, NodeId v, const void*) -> double {
    if ((u == 0 && v == 1) || (u == 2 && v == 3)) return 10.0;
    return 0.0;
  };
  const CliquePartition p = clique_partition(g, weight, nullptr);
  EXPECT_TRUE(is_valid_clique_partition(g, p));
  EXPECT_EQ(p.clique_of[0], p.clique_of[1]);
  EXPECT_EQ(p.clique_of[2], p.clique_of[3]);
}

TEST(Matching, PerfectMatching) {
  std::vector<std::vector<int>> adj{{0, 1}, {0}, {1, 2}};
  const auto m = max_bipartite_matching(adj, 3);
  int matched = 0;
  for (int x : m)
    if (x >= 0) ++matched;
  EXPECT_EQ(matched, 3);
}

TEST(Matching, AugmentingPathNeeded) {
  // l0 -> {r0}, l1 -> {r0, r1}: naive greedy might block l0.
  std::vector<std::vector<int>> adj{{0}, {0, 1}};
  const auto m = max_bipartite_matching(adj, 2);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 1);
}

TEST(Matching, NoEdges) {
  std::vector<std::vector<int>> adj{{}, {}};
  const auto m = max_bipartite_matching(adj, 2);
  EXPECT_EQ(m[0], -1);
  EXPECT_EQ(m[1], -1);
}

// Property sweep: MFVS validity across graph densities.
class MfvsSweep : public ::testing::TestWithParam<int> {};

TEST_P(MfvsSweep, GreedyAlwaysValid) {
  const int density_pct = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Digraph g = random_digraph(14, density_pct / 100.0, seed * 7 + 1);
    const auto fvs = greedy_mfvs(g);
    EXPECT_TRUE(is_feedback_vertex_set(g, fvs));
    // Minimality-ish: dropping any selected node must leave a loop.
    for (std::size_t drop = 0; drop < fvs.size(); ++drop) {
      std::vector<NodeId> smaller;
      for (std::size_t i = 0; i < fvs.size(); ++i)
        if (i != drop) smaller.push_back(fvs[i]);
      // Not required to fail for greedy, but must fail for exact:
    }
    const auto exact = exact_mfvs(g);
    for (std::size_t drop = 0; drop < exact.size(); ++drop) {
      std::vector<NodeId> smaller;
      for (std::size_t i = 0; i < exact.size(); ++i)
        if (i != drop) {
        smaller.push_back(exact[i]);
      }
      EXPECT_FALSE(is_feedback_vertex_set(g, smaller))
          << "exact MFVS not minimal at density " << density_pct;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, MfvsSweep,
                         ::testing::Values(5, 10, 20, 30));

}  // namespace
}  // namespace tsyn::graph
