// Tests for the live observability endpoint: the embedded HTTP server,
// the Prometheus exporter, the JSON/profile/dashboard endpoints, and the
// two load-bearing contracts — (1) /metrics reconciles *exactly* with the
// --metrics JSON artifact, and (2) a hammering scraper never changes the
// workload's results (byte-identical ledger JSON and coverage).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <regex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cdfg/benchmarks.h"
#include "compaction/compaction.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/netlist.h"
#include "hls/synthesis.h"
#include "observe/ledger.h"
#include "observe/serve.h"
#include "util/httpd.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/prometheus.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace tsyn {
namespace {

using observe::ObservabilityServer;
using observe::ServeOptions;

/// Full-scan gate-level expansion of a behavior — same rig as the
/// telemetry/compaction tests.
gl::Netlist full_scan_netlist(const cdfg::Cdfg& g, int width) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  hls::Synthesis syn = hls::synthesize(g, opts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  return gl::expand_datapath(dp, x).netlist;
}

ObservabilityServer* start_server(ServeOptions opts = {}) {
  auto* srv = new ObservabilityServer();
  std::string err;
  opts.port = 0;  // always ephemeral in tests
  EXPECT_TRUE(srv->start(opts, &err)) << err;
  return srv;
}

std::string get(const ObservabilityServer& srv, const std::string& target,
                int expect_status = 200) {
  std::string body;
  const int status =
      util::http_get(srv.address(), srv.port(), target, &body);
  EXPECT_EQ(status, expect_status) << target << " -> " << body;
  return body;
}

// -- [ADDR:]PORT spec parsing ------------------------------------------------

TEST(ServeSpec, AcceptsPortAndAddrPortForms) {
  std::string addr;
  int port = -1;
  EXPECT_TRUE(util::parse_serve_spec("8080", &addr, &port));
  EXPECT_EQ(addr, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(util::parse_serve_spec("0", &addr, &port));
  EXPECT_EQ(port, 0);
  EXPECT_TRUE(util::parse_serve_spec("0.0.0.0:9091", &addr, &port));
  EXPECT_EQ(addr, "0.0.0.0");
  EXPECT_EQ(port, 9091);
}

TEST(ServeSpec, RejectsMalformedSpecsStrictly) {
  for (const char* bad : {"", "x", "8080x", "70000", "-1", "+80", " 80",
                          ":80", "foo:80", "1.2.3:80", "127.0.0.1:",
                          "127.0.0.1:8080x"}) {
    std::string addr = "sentinel";
    int port = -7;
    EXPECT_FALSE(util::parse_serve_spec(bad, &addr, &port)) << bad;
    // Outputs untouched on failure.
    EXPECT_EQ(addr, "sentinel") << bad;
    EXPECT_EQ(port, -7) << bad;
  }
}

TEST(ServeSpec, QueryParamExtraction) {
  EXPECT_EQ(util::http_query_param("seconds=2", "seconds"), "2");
  EXPECT_EQ(util::http_query_param("a=1&seconds=3&b=2", "seconds"), "3");
  EXPECT_EQ(util::http_query_param("a=1", "seconds"), "");
  EXPECT_EQ(util::http_query_param("", "seconds"), "");
  EXPECT_EQ(util::http_query_param("secondsy=9", "seconds"), "");
}

// -- Prometheus exporter -----------------------------------------------------

TEST(Prometheus, SanitizesNamesIntoTheLegalCharset) {
  EXPECT_EQ(util::prom_sanitize_name("atpg.backtracks"), "atpg_backtracks");
  EXPECT_EQ(util::prom_sanitize_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(util::prom_sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(util::prom_sanitize_name(""), "_");
  EXPECT_EQ(util::prom_sanitize_name("ok_name:x"), "ok_name:x");
}

TEST(Prometheus, ExpositionCoversAllKindsAndDeduplicatesCollisions) {
  util::MetricsSnapshot m;
  m.counters["atpg.backtracks"] = 42;
  m.counters["a.b"] = 1;
  m.counters["a_b"] = 2;  // sanitizes to the same name as "a.b"
  m.gauges["sched.len"] = 3.5;
  util::HistogramSnapshot h;
  h.count = 3;
  h.sum = 7;
  h.min = 1;
  h.max = 4;
  h.buckets[1] = 2;  // two observations of 1
  h.buckets[3] = 1;  // one observation in [4, 8)
  m.histograms["sim.events"] = h;

  const std::string text = util::metrics_to_prometheus(m);
  EXPECT_NE(text.find("# TYPE tsyn_atpg_backtracks_total counter\n"
                      "tsyn_atpg_backtracks_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsyn_a_b_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("tsyn_a_b_total_2 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tsyn_sched_len gauge\ntsyn_sched_len 3.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsyn_sim_events summary\n"), std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events_min 1\n"), std::string::npos);
  EXPECT_NE(text.find("tsyn_sim_events_max 4\n"), std::string::npos);
}

TEST(Prometheus, EveryLineMatchesTheExpositionGrammar) {
  // A few registry-shaped metrics plus awkward names.
  util::MetricsSnapshot m;
  m.counters["campaign.cache.parse.hit"] = 12;
  m.counters["0weird name!"] = 1;
  m.gauges["faultsim.shard.imbalance"] = 0.125;
  util::HistogramSnapshot h;
  h.count = 1;
  h.sum = 9;
  h.min = 9;
  h.max = 9;
  h.buckets[4] = 1;
  m.histograms["atpg.bt.per_fault"] = h;

  const std::regex line_re(
      R"(^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary))$|)"
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+)$)");
  std::istringstream in(util::metrics_to_prometheus(m));
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
  EXPECT_GE(lines, 2 * 2 + 2 + 9);  // counters + gauge + summary block
}

// -- endpoint behavior -------------------------------------------------------

TEST(Serve, HealthReadyAndUnknownEndpoints) {
  std::unique_ptr<ObservabilityServer> srv(start_server());
  EXPECT_EQ(get(*srv, "/healthz"), "ok\n");

  // readyz reflects telemetry attachment.
  if (!util::telemetry_active()) {
    (void)get(*srv, "/readyz", 503);
    util::TelemetryOptions topts;  // no heartbeat stream, thread only
    topts.interval_ms = 10;
    ASSERT_TRUE(util::telemetry_start(topts));
    EXPECT_EQ(get(*srv, "/readyz"), "ready\n");
    util::telemetry_stop();
  }

  const std::string notfound = get(*srv, "/nope", 404);
  EXPECT_NE(notfound.find("/metrics"), std::string::npos);
  EXPECT_GE(srv->requests(), 3);
  srv->stop();
  srv->stop();  // idempotent
}

TEST(Serve, QuitzOnlyWhenAllowed) {
  std::unique_ptr<ObservabilityServer> attached(start_server());
  (void)get(*attached, "/quitz", 404);
  EXPECT_FALSE(attached->quit_requested());
  attached->stop();

  ServeOptions opts;
  opts.allow_quit = true;
  std::unique_ptr<ObservabilityServer> daemon(start_server(opts));
  EXPECT_FALSE(daemon->quit_requested());
  EXPECT_EQ(get(*daemon, "/quitz"), "bye\n");
  EXPECT_TRUE(daemon->quit_requested());
  daemon->wait_for_quit();  // returns immediately once quit was requested
  daemon->stop();
}

TEST(Serve, SecondBindOnSamePortFails) {
  std::unique_ptr<ObservabilityServer> first(start_server());
  ObservabilityServer second;
  ServeOptions opts;
  opts.port = first->port();
  std::string err;
  EXPECT_FALSE(second.start(opts, &err));
  EXPECT_FALSE(err.empty());
  first->stop();
}

TEST(Serve, ProgressAndJobsSnapshotsAsJson) {
  util::progress_reset();
  util::telemetry_jobs_reset();
  util::progress_enable();
  util::progress("test.serve.rows").add_total(10);
  util::progress("test.serve.rows").add(4);
  util::telemetry_job_begin("job.a");
  util::telemetry_job_begin("job.b");
  util::telemetry_job_end("job.b", /*failed=*/true);
  util::telemetry_set_phase("test.serve");

  std::unique_ptr<ObservabilityServer> srv(start_server());
  const util::Json prog = util::Json::parse(get(*srv, "/progress"));
  EXPECT_EQ(prog.find("phase")->str, "test.serve");
  ASSERT_TRUE(prog.find("progress")->is_array());
  bool found = false;
  for (const util::Json& row : prog.find("progress")->arr) {
    if (row.find("name")->str != "test.serve.rows") continue;
    found = true;
    EXPECT_EQ(row.number_or("done", -1), 4);
    EXPECT_EQ(row.number_or("total", -1), 10);
  }
  EXPECT_TRUE(found);

  const util::Json jobs = util::Json::parse(get(*srv, "/jobs"));
  const util::Json* rollup = jobs.find("jobs");
  ASSERT_NE(rollup, nullptr);
  EXPECT_EQ(rollup->number_or("started", -1), 2);
  EXPECT_EQ(rollup->number_or("done", -1), 1);
  EXPECT_EQ(rollup->number_or("failed", -1), 1);
  EXPECT_EQ(rollup->number_or("in_flight", -1), 1);
  ASSERT_TRUE(rollup->find("running")->is_array());
  EXPECT_EQ(rollup->find("running")->arr.size(), 1u);
  EXPECT_EQ(rollup->find("running")->arr[0].str, "job.a");

  srv->stop();
  util::telemetry_job_end("job.a", false);
  util::telemetry_jobs_reset();
  util::progress_disable();
  util::progress_reset();
}

TEST(Serve, MetricsEndpointReconcilesExactlyWithJsonArtifact) {
  // Make the registry non-trivial, then compare the scrape against the
  // same snapshot the --metrics artifact serializes. The registry is
  // quiescent here, exactly like the window in which the CLI writes the
  // artifact — so equality must be exact, not approximate.
  util::metrics().counter("test.serve.counter").add(17);
  util::metrics().gauge("test.serve.gauge").set(2.25);
  util::metrics().histogram("test.serve.hist").observe(3);
  util::metrics().histogram("test.serve.hist").observe(5);

  std::unique_ptr<ObservabilityServer> srv(start_server());
  const std::string text = get(*srv, "/metrics");
  srv->stop();

  const util::MetricsSnapshot snap = util::metrics().snapshot();
  for (const auto& [name, v] : snap.counters) {
    const std::string line = "\ntsyn_" + util::prom_sanitize_name(name) +
                             "_total " + std::to_string(v) + "\n";
    EXPECT_NE(text.find(line), std::string::npos)
        << "counter " << name << " missing or mismatched: " << line;
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string base = "tsyn_" + util::prom_sanitize_name(name);
    EXPECT_NE(text.find("\n" + base + "_count " + std::to_string(h.count) +
                        "\n"),
              std::string::npos)
        << name;
    EXPECT_NE(
        text.find("\n" + base + "_sum " + std::to_string(h.sum) + "\n"),
        std::string::npos)
        << name;
  }
  // And the artifact side: every counter in to_json() appears in the
  // exposition with the same value (parse the artifact, don't trust it).
  const util::Json artifact = util::Json::parse(util::metrics().to_json());
  const util::Json* counters = artifact.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const auto& [name, node] : counters->obj) {
    const std::string line =
        "\ntsyn_" + util::prom_sanitize_name(name) + "_total " +
        std::to_string(static_cast<std::int64_t>(node.number)) + "\n";
    EXPECT_NE(text.find(line), std::string::npos) << name;
  }
  // The server's own activity must NOT appear in the registry artifact.
  EXPECT_EQ(counters->find("serve.requests"), nullptr);
  EXPECT_EQ(snap.counters.count("serve.requests"), 0u);
  EXPECT_NE(text.find("tsyn_serve_requests_total"), std::string::npos);
}

TEST(Serve, ProfileEndpointSamplesLiveSpans) {
  std::unique_ptr<ObservabilityServer> srv(start_server());
  (void)get(*srv, "/profile?seconds=abc", 400);
  (void)get(*srv, "/profile?seconds=-1", 400);

  // A worker that re-enters its span throughout the sampling window —
  // the shape of a real campaign loop. (Re-entry matters: recording is
  // enabled lazily by the first /profile request, so a span pushed
  // before that and merely *held* is invisible to the sampler.)
  std::atomic<bool> stop{false};
  std::thread busy([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      TSYN_SPAN("test.serve.busy");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const std::string prof = get(*srv, "/profile?seconds=1");
  stop.store(true, std::memory_order_relaxed);
  busy.join();
  EXPECT_NE(prof.find("# tsyn profile seconds=1"), std::string::npos);
  EXPECT_NE(prof.find("test.serve.busy"), std::string::npos);
  srv->stop();
}

TEST(Serve, DashboardIsSelfContainedHtml) {
  ServeOptions opts;
  opts.command = "unit<test>";  // must come out escaped
  std::unique_ptr<ObservabilityServer> srv(start_server(opts));
  const std::string html = get(*srv, "/");
  srv->stop();

  EXPECT_EQ(html.compare(0, 15, "<!DOCTYPE html>"), 0);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("http-equiv=\"refresh\""), std::string::npos);
  EXPECT_NE(html.find("unit&lt;test&gt;"), std::string::npos);
  // Self-containment: no scripts, no external fetches of any kind.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

// -- scrape-under-load determinism -------------------------------------------

#ifndef TSYN_LEDGER_NOOP
TEST(Serve, HammeringScraperNeverChangesResults) {
  const gl::Netlist n = full_scan_netlist(cdfg::diffeq(), 4);
  const std::vector<gl::Fault> faults = gl::enumerate_faults(n);

  // Full-scan ATPG + static compaction with the fault ledger on — the
  // same pipeline `tsyn_cli atpg --compact static` drives.
  auto run = [&]() -> std::pair<std::string, double> {
    observe::ledger_reset();
    observe::ledger_enable();
    compaction::CompactionOptions copts;
    copts.mode = compaction::CompactMode::kStatic;
    const compaction::CompactedCampaign c =
        compaction::run_compacted_atpg(n, faults, copts,
                                       /*backtrack_limit=*/2000);
    observe::ledger_disable();
    return {observe::ledger_to_json(), c.pattern_coverage};
  };

  const std::pair<std::string, double> off = run();

  util::progress_reset();
  util::progress_enable();
  std::unique_ptr<ObservabilityServer> srv(start_server());
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    // Hammer every endpoint the whole time the workload runs.
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char* targets[] = {"/metrics", "/progress", "/jobs", "/",
                               "/healthz"};
      std::string body;
      (void)util::http_get(srv->address(), srv->port(),
                           targets[i++ % 5], &body);
    }
  });
  const std::pair<std::string, double> on = run();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  const std::int64_t scraped = srv->requests();
  srv->stop();
  util::progress_disable();
  util::progress_reset();

  EXPECT_GT(scraped, 0) << "poller never got through — test is vacuous";
  EXPECT_EQ(off.second, on.second);  // identical coverage
  EXPECT_EQ(off.first, on.first);    // byte-identical ledger JSON
}
#endif  // TSYN_LEDGER_NOOP

}  // namespace
}  // namespace tsyn
