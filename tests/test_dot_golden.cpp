// Golden-file tests for the DOT writers: the plain renderings of
// rtl::datapath_to_dot and cdfg::to_dot must stay byte-stable, and the
// coverage-heatmap overlays must produce exactly the committed output for
// a fixed synthetic heat vector.
//
// Regenerate after an intentional format change with
//   TSYN_REGEN_GOLDEN=1 ctest -R test_dot_golden
// and commit the updated files under tests/data/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "hls/synthesis.h"
#include "rtl/dot.h"

namespace tsyn {
namespace {

/// Locates the committed golden `name`, probing the configured source-tree
/// data dir first, then the relative fallbacks older tests use.
std::string data_path(const std::string& name) {
  std::vector<std::string> candidates;
#ifdef TSYN_TEST_DATA_DIR
  candidates.push_back(std::string(TSYN_TEST_DATA_DIR) + "/" + name);
#endif
  candidates.push_back("../data/" + name);
  candidates.push_back("data/" + name);
  for (const std::string& path : candidates) {
    if (std::ifstream(path).good()) return path;
  }
  return candidates.front();  // regen mode writes here
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Compares `rendered` against the golden, or rewrites the golden when
/// TSYN_REGEN_GOLDEN is set.
void check_golden(const std::string& name, const std::string& rendered) {
  const std::string path = data_path(name);
  if (std::getenv("TSYN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << rendered;
    return;
  }
  std::ifstream probe(path);
  if (!probe.good())
    GTEST_SKIP() << "golden " << path
                 << " not found (run with TSYN_REGEN_GOLDEN=1 to create)";
  EXPECT_EQ(read_file(path), rendered)
      << "DOT output drifted from golden " << name
      << "; regenerate with TSYN_REGEN_GOLDEN=1 if intentional";
}

/// The fixture design: default-synthesis diffeq, fully deterministic.
const hls::Synthesis& diffeq_syn() {
  static const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), {});
  return syn;
}

/// Synthetic heat: a deterministic ramp with one no-data entry, so the
/// golden exercises the full color range plus the -1 passthrough.
std::vector<double> ramp(int n, int no_data_at) {
  std::vector<double> h(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    h[static_cast<std::size_t>(i)] =
        i == no_data_at ? -1.0 : static_cast<double>(i) / std::max(n - 1, 1);
  return h;
}

TEST(DotGolden, DatapathPlain) {
  check_golden("diffeq_datapath.dot",
               rtl::datapath_to_dot(diffeq_syn().rtl.datapath));
}

TEST(DotGolden, DatapathHeatmap) {
  const rtl::Datapath& dp = diffeq_syn().rtl.datapath;
  rtl::DatapathHeat heat;
  heat.reg = ramp(dp.num_regs(), 1);
  heat.fu = ramp(dp.num_fus(), -1);
  check_golden("diffeq_datapath_heat.dot", rtl::datapath_to_dot(dp, &heat));
}

TEST(DotGolden, CdfgPlain) {
  check_golden("diffeq_cdfg.dot", cdfg::to_dot(cdfg::diffeq()));
}

TEST(DotGolden, CdfgHeatmap) {
  const cdfg::Cdfg g = cdfg::diffeq();
  const std::vector<double> heat = ramp(g.num_ops(), 2);
  check_golden("diffeq_cdfg_heat.dot", cdfg::to_dot(g, {}, &heat));
}

// The overlay contract, independent of golden files: no heat pointer,
// an empty heat, and an all-no-data heat must all render the plain bytes.
TEST(DotOverlay, NoDataHeatIsByteIdenticalToPlain) {
  const rtl::Datapath& dp = diffeq_syn().rtl.datapath;
  const std::string plain = rtl::datapath_to_dot(dp);
  rtl::DatapathHeat empty;
  EXPECT_EQ(rtl::datapath_to_dot(dp, &empty), plain);
  rtl::DatapathHeat none;
  none.reg.assign(static_cast<std::size_t>(dp.num_regs()), -1.0);
  none.fu.assign(static_cast<std::size_t>(dp.num_fus()), -1.0);
  EXPECT_EQ(rtl::datapath_to_dot(dp, &none), plain);

  const cdfg::Cdfg g = cdfg::diffeq();
  const std::string cplain = cdfg::to_dot(g);
  const std::vector<double> cnone(static_cast<std::size_t>(g.num_ops()),
                                  -1.0);
  EXPECT_EQ(cdfg::to_dot(g, {}, &cnone), cplain);
}

TEST(DotOverlay, RampEndpointsUseAnchorColors) {
  const rtl::Datapath& dp = diffeq_syn().rtl.datapath;
  rtl::DatapathHeat heat;
  heat.reg.assign(static_cast<std::size_t>(dp.num_regs()), 0.0);
  heat.fu.assign(static_cast<std::size_t>(dp.num_fus()), 1.0);
  const std::string dot = rtl::datapath_to_dot(dp, &heat);
  EXPECT_NE(dot.find("#d73027"), std::string::npos);  // 0% -> red
  EXPECT_NE(dot.find("#1a9850"), std::string::npos);  // 100% -> green
  EXPECT_NE(dot.find("0%"), std::string::npos);
  EXPECT_NE(dot.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace tsyn
