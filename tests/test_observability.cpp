// Tests for the observability subsystem: metrics registry, scoped-span
// tracing, and the structured logger.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "gatelevel/faultsim.h"
#include "gatelevel/faults.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace tsyn::util {
namespace {

// The registry is process-wide, so each test works with uniquely named
// instruments (and the reset test snapshots around itself).

TEST(Metrics, CounterAddsAndReads) {
  Counter& c = metrics().counter("test.counter.basic");
  const long before = c.read();
  c.add();
  c.add(41);
  EXPECT_EQ(c.read(), before + 42);
}

TEST(Metrics, CounterNameLookupIsStable) {
  Counter& a = metrics().counter("test.counter.stable");
  Counter& b = metrics().counter("test.counter.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, CounterMergesAcrossThreads) {
  Counter& c = metrics().counter("test.counter.threads");
  const long before = c.read();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  // Striped cells must merge exactly: no lost updates, no double counts.
  EXPECT_EQ(c.read(), before + static_cast<long>(kThreads) * kIncrements);
}

TEST(Metrics, CounterMergesUnderPoolWorkers) {
  Counter& c = metrics().counter("test.counter.pool");
  const long before = c.read();
  ThreadPool pool(4);
  pool.run(1000, 4, [&c](int, int) { c.add(); });
  EXPECT_EQ(c.read(), before + 1000);
}

TEST(Metrics, GaugeSetAndMax) {
  Gauge& g = metrics().gauge("test.gauge.basic");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.read(), 3.5);
  g.set_max(2.0);
  EXPECT_DOUBLE_EQ(g.read(), 3.5);  // lower candidate loses
  g.set_max(7.25);
  EXPECT_DOUBLE_EQ(g.read(), 7.25);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.read(), -1.0);  // plain set always overwrites
}

TEST(Metrics, HistogramCountsSumMinMax) {
  Histogram& h = metrics().histogram("test.hist.basic");
  h.observe(1);
  h.observe(5);
  h.observe(100);
  const HistogramSnapshot s = h.read();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.sum, 106);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
}

TEST(Metrics, HistogramLogBuckets) {
  Histogram& h = metrics().histogram("test.hist.buckets");
  h.observe(0);  // bucket 0: v <= 0
  h.observe(1);  // bucket 1: v == 1
  h.observe(2);  // bucket 2: 2..3
  h.observe(3);
  h.observe(64);  // bucket 7: 64..127
  const HistogramSnapshot s = h.read();
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
  EXPECT_EQ(s.buckets[7], 1);
}

TEST(Metrics, HistogramMergesAcrossThreads) {
  Histogram& h = metrics().histogram("test.hist.threads");
  ThreadPool pool(4);
  pool.run(256, 4, [&h](int item, int) { h.observe(item); });
  const HistogramSnapshot s = h.read();
  EXPECT_EQ(s.count, 256);
  EXPECT_EQ(s.sum, 255 * 256 / 2);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 255);
}

TEST(Metrics, JsonIsWellFormedAndContainsInstruments) {
  metrics().counter("test.json.counter").add(7);
  metrics().gauge("test.json.gauge").set(1.5);
  metrics().histogram("test.json.hist").observe(9);
  const std::string j = metrics().to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"test.json.hist\""), std::string::npos);
  // Brace balance as a cheap well-formedness proxy (names are dotted
  // identifiers, so braces only come from structure).
  long depth = 0;
  for (char ch : j) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Metrics, PercentilesInterpolateWithinBuckets) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(v);
  const HistogramSnapshot s = h.read();
  // The estimate can only be off by the width of the log2 bucket the rank
  // lands in: rank 500 is in [256, 512), rank 900 in [512, 1024).
  EXPECT_GE(s.percentile(50), 256.0);
  EXPECT_LE(s.percentile(50), 512.0);
  EXPECT_GE(s.percentile(90), 512.0);
  EXPECT_LE(s.percentile(90), 1000.0);  // clamped to the true max
  // Monotone in p, and pinned to the exact extrema at the ends.
  EXPECT_LE(s.percentile(50), s.percentile(90));
  EXPECT_LE(s.percentile(90), s.percentile(99));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 1000.0);
}

TEST(Metrics, PercentilesClampToObservedRange) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(100);
  const HistogramSnapshot s = h.read();
  // One distinct value: every percentile is that value, not a bucket edge.
  EXPECT_DOUBLE_EQ(s.percentile(50), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 100.0);
}

TEST(Metrics, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.read().percentile(50), 0.0);
}

TEST(Metrics, PercentilesHandleNonPositiveBucket) {
  Histogram h;
  h.observe(-4);
  h.observe(-4);
  h.observe(-4);
  h.observe(8);
  const HistogramSnapshot s = h.read();
  // Rank p50 lands in bucket 0 (v <= 0), whose range is [min, 0].
  EXPECT_GE(s.percentile(50), -4.0);
  EXPECT_LE(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 8.0);
}

TEST(Metrics, JsonExportsPercentiles) {
  metrics().histogram("test.json.pctl").observe(10);
  const std::string j = metrics().to_json();
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"p90\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

TEST(Metrics, ResetZeroesEverything) {
  Counter& c = metrics().counter("test.reset.counter");
  Histogram& h = metrics().histogram("test.reset.hist");
  c.add(5);
  h.observe(5);
  metrics().reset();
  EXPECT_EQ(c.read(), 0);
  EXPECT_EQ(h.read().count, 0);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_disable();
    trace_reset();
  }
  void TearDown() override {
    trace_disable();
    trace_reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { Span s("should.not.appear"); }
  EXPECT_EQ(trace_span_count(), 0u);
}

#ifndef TSYN_TRACE_NOOP

TEST_F(TraceTest, EnabledSpansAreCollected) {
  trace_enable();
  {
    TSYN_SPAN("outer");
    { TSYN_SPAN("inner"); }
  }
  EXPECT_EQ(trace_span_count(), 2u);
  const std::string j = trace_to_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"outer\""), std::string::npos);
  EXPECT_NE(j.find("\"inner\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, SpansFromPoolWorkersSurvive) {
  trace_enable();
  ThreadPool pool(4);
  pool.run(32, 4, [](int, int) { TSYN_SPAN("worker.span"); });
  EXPECT_EQ(trace_span_count(), 32u);
}

TEST_F(TraceTest, NestedSpansContainedInParent) {
  trace_enable();
  {
    TSYN_SPAN("parent");
    { TSYN_SPAN("child"); }
  }
  const std::string j = trace_to_json();
  // Chrome nests same-tid "X" events by containment; we at least check both
  // events carry ts and dur fields.
  EXPECT_NE(j.find("\"ts\":"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, ResetDropsSpans) {
  trace_enable();
  { TSYN_SPAN("gone"); }
  EXPECT_EQ(trace_span_count(), 1u);
  trace_reset();
  EXPECT_EQ(trace_span_count(), 0u);
}

#endif  // TSYN_TRACE_NOOP

TEST(Log, ParseLevels) {
  LogLevel l = LogLevel::kError;
  EXPECT_TRUE(parse_log_level("debug", &l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("warn", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("info", &l));
  EXPECT_EQ(l, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("error", &l));
  EXPECT_EQ(l, LogLevel::kError);
  EXPECT_FALSE(parse_log_level("loud", &l));
  EXPECT_EQ(l, LogLevel::kError);  // untouched on failure
}

TEST(Log, LevelGateRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "debug");
  set_log_level(before);
}

// The per-fault effort attribution the ledger reads (last_propagate_events)
// must be cleared together with the totals, or the first fault after a
// metrics publish inherits the previous shard's attribution.
TEST(WorkCounters, PropagatorResetClearsAllThree) {
  gl::Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(gl::GateType::kAnd, {a, b});
  const int h = n.add_gate(gl::GateType::kXor, {g, b});
  n.mark_output(h);
  n.validate();
  std::vector<gl::Bits> good(n.num_nodes(), gl::Bits::unknown());
  good[a] = gl::Bits::all1();
  good[b] = gl::Bits::all1();
  gl::simulate_frame(n, good);

  gl::FaultPropagator prop(n);
  prop.propagate(gl::Fault{a, -1, false}, good);  // a stuck-at-0
  EXPECT_GT(prop.events_processed(), 0);
  EXPECT_EQ(prop.faults_propagated(), 1);
  EXPECT_GT(prop.last_propagate_events(), 0);
  prop.reset_work_counters();
  EXPECT_EQ(prop.events_processed(), 0);
  EXPECT_EQ(prop.faults_propagated(), 0);
  EXPECT_EQ(prop.last_propagate_events(), 0);
}

}  // namespace
}  // namespace tsyn::util
