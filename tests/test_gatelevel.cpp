#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdfg/benchmarks.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "hls/synthesis.h"
#include "util/rng.h"

namespace tsyn::gl {
namespace {

// Packs 64 per-lane word values into per-bit Bits for a word of PIs.
std::vector<Bits> pack_lanes(const std::vector<std::uint64_t>& lane_values,
                             int width) {
  std::vector<Bits> bits(width, Bits::all0());
  for (int lane = 0; lane < static_cast<int>(lane_values.size()); ++lane)
    for (int b = 0; b < width; ++b)
      if ((lane_values[lane] >> b) & 1) bits[b].v |= 1ULL << lane;
  return bits;
}

std::uint64_t unpack_lane(const std::vector<Bits>& values,
                          const std::vector<int>& word, int lane) {
  std::uint64_t out = 0;
  for (std::size_t b = 0; b < word.size(); ++b) {
    EXPECT_EQ((values[word[b]].x >> lane) & 1, 0u) << "unknown bit";
    if ((values[word[b]].v >> lane) & 1) out |= 1ULL << b;
  }
  return out;
}

struct BinOpRig {
  Netlist n;
  Word a;
  Word b;
  Word out;

  explicit BinOpRig(cdfg::OpKind kind, int width = 8) {
    a = make_input_word(n, "a", width);
    b = make_input_word(n, "b", width);
    const Word c = make_const_word(n, 0, width);
    out = build_op_result(n, kind, a, b, c);
    for (int bit : out) n.mark_output(bit);
    n.validate();
  }

  // Evaluates the op over 64 random operand pairs; returns (a, b, out).
  void check(std::uint64_t (*expected)(std::uint64_t, std::uint64_t),
             std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::uint64_t> va(64);
    std::vector<std::uint64_t> vb(64);
    for (int i = 0; i < 64; ++i) {
      va[i] = rng.next_u64() & 0xFF;
      vb[i] = rng.next_u64() & 0xFF;
    }
    std::vector<Bits> values(n.num_nodes(), Bits::unknown());
    const auto abits = pack_lanes(va, 8);
    const auto bbits = pack_lanes(vb, 8);
    for (int i = 0; i < 8; ++i) {
      values[a[i]] = abits[i];
      values[b[i]] = bbits[i];
    }
    simulate_frame(n, values);
    for (int lane = 0; lane < 64; ++lane)
      EXPECT_EQ(unpack_lane(values, out, lane),
                expected(va[lane], vb[lane]) & 0xFF)
          << "lane " << lane;
  }
};

TEST(Words, Adder) {
  BinOpRig rig(cdfg::OpKind::kAdd);
  rig.check([](std::uint64_t a, std::uint64_t b) { return a + b; }, 1);
}

TEST(Words, Subtractor) {
  BinOpRig rig(cdfg::OpKind::kSub);
  rig.check([](std::uint64_t a, std::uint64_t b) { return a - b; }, 2);
}

TEST(Words, Multiplier) {
  BinOpRig rig(cdfg::OpKind::kMul);
  rig.check([](std::uint64_t a, std::uint64_t b) { return a * b; }, 3);
}

TEST(Words, BitwiseOps) {
  BinOpRig andr(cdfg::OpKind::kAnd);
  andr.check([](std::uint64_t a, std::uint64_t b) { return a & b; }, 4);
  BinOpRig orr(cdfg::OpKind::kOr);
  orr.check([](std::uint64_t a, std::uint64_t b) { return a | b; }, 5);
  BinOpRig xorr(cdfg::OpKind::kXor);
  xorr.check([](std::uint64_t a, std::uint64_t b) { return a ^ b; }, 6);
}

TEST(Words, Comparisons) {
  BinOpRig lt(cdfg::OpKind::kLt);
  lt.check([](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    return (a & 0xFF) < (b & 0xFF) ? 1 : 0;
  }, 7);
  BinOpRig eq(cdfg::OpKind::kEq);
  eq.check([](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    return (a & 0xFF) == (b & 0xFF) ? 1 : 0;
  }, 8);
}

TEST(Words, UnaryOps) {
  BinOpRig no(cdfg::OpKind::kNot);
  no.check([](std::uint64_t a, std::uint64_t) { return ~a; }, 9);
  BinOpRig neg(cdfg::OpKind::kNeg);
  neg.check([](std::uint64_t a, std::uint64_t) { return 0 - a; }, 10);
}

TEST(Words, Shifts) {
  BinOpRig shl(cdfg::OpKind::kShl);
  shl.check([](std::uint64_t a, std::uint64_t) { return a << 1; }, 11);
  BinOpRig shr(cdfg::OpKind::kShr);
  shr.check([](std::uint64_t a, std::uint64_t) { return (a & 0xFF) >> 1; },
            12);
}

TEST(Netlist, XPropagationThroughAnd) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  std::vector<Bits> values(n.num_nodes(), Bits::unknown());
  values[a] = Bits::all0();  // known 0 dominates unknown
  simulate_frame(n, values);
  EXPECT_EQ(values[g].x, 0u);
  EXPECT_EQ(values[g].v, 0u);
  values[a] = Bits::all1();  // 1 AND X = X
  simulate_frame(n, values);
  EXPECT_EQ(values[g].x, ~0ULL);
}

TEST(Netlist, MuxXSelectAgreeingLegs) {
  Netlist n;
  const int s = n.add_input("s");
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int m = n.add_gate(GateType::kMux, {s, a, b});
  n.mark_output(m);
  std::vector<Bits> values(n.num_nodes(), Bits::unknown());
  values[a] = Bits::all1();
  values[b] = Bits::all1();
  simulate_frame(n, values);
  EXPECT_EQ(values[m].x, 0u);  // legs agree: select doesn't matter
  EXPECT_EQ(values[m].v, ~0ULL);
}

TEST(Netlist, CombinationalCycleRejected) {
  Netlist n;
  const int a = n.add_input("a");
  const int g1 = n.add_gate(GateType::kAnd, {a, a});
  // Create a cycle by abusing a DFF-free back edge: not directly
  // constructible through the API (fanins must exist), so validate the
  // DFF escape hatch instead: feedback through a DFF is legal.
  const int d = n.add_dff(-1);
  const int g2 = n.add_gate(GateType::kAnd, {g1, d});
  n.set_dff_input(d, g2);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, SequentialAccumulator) {
  // DFF accumulating a via an adder: q' = q + a (1-bit: q' = q XOR a).
  Netlist n;
  const int a = n.add_input("a");
  const int q = n.add_dff(-1, "q");
  const int x = n.add_gate(GateType::kXor, {a, q});
  n.set_dff_input(q, x);
  n.mark_output(x);
  std::vector<std::vector<Bits>> frames(3, {Bits::all1()});
  std::vector<Bits> init{Bits::all0()};
  const auto trace = simulate_sequence(n, frames, &init);
  EXPECT_EQ(trace[0][x].v, ~0ULL);  // 0 xor 1
  EXPECT_EQ(trace[1][x].v, 0u);     // 1 xor 1
  EXPECT_EQ(trace[2][x].v, ~0ULL);
}

TEST(Faults, EnumerationCountsAndCollapse) {
  BinOpRig rig(cdfg::OpKind::kAdd);
  const auto full = enumerate_faults(rig.n, false);
  const auto collapsed = enumerate_faults(rig.n, true);
  EXPECT_GT(full.size(), collapsed.size());
  EXPECT_GT(collapsed.size(), 50u);
}

TEST(Faults, NoFaultsOnConstants) {
  Netlist n;
  const int c = n.add_const(true);
  const int a = n.add_input("a");
  const int g = n.add_gate(GateType::kAnd, {a, c});
  n.mark_output(g);
  for (const Fault& f : enumerate_faults(n))
    EXPECT_NE(f.node, c);
}

TEST(FaultSim, DetectsInverterFault) {
  Netlist n;
  const int a = n.add_input("a");
  const int g = n.add_gate(GateType::kNot, {a});
  n.mark_output(g);
  FaultSimulator sim(n);
  std::vector<Fault> faults{{g, -1, false}, {g, -1, true}};
  std::vector<bool> detected;
  sim.run_block({Bits::known(0x00FF00FF00FF00FFULL)}, faults, detected);
  EXPECT_TRUE(detected[0]);  // sa0 seen where output should be 1
  EXPECT_TRUE(detected[1]);
}

TEST(FaultSim, UndetectableWithoutActivation) {
  Netlist n;
  const int a = n.add_input("a");
  const int g = n.add_gate(GateType::kBuf, {a});
  n.mark_output(g);
  FaultSimulator sim(n);
  std::vector<Fault> faults{{g, -1, true}};
  std::vector<bool> detected;
  sim.run_block({Bits::all1()}, faults, detected);  // output already 1
  EXPECT_FALSE(detected[0]);
  sim.run_block({Bits::all0()}, faults, detected);
  EXPECT_TRUE(detected[0]);
}

TEST(FaultSim, AdderNearFullCoverageUnderRandom) {
  BinOpRig rig(cdfg::OpKind::kAdd);
  const auto faults = enumerate_faults(rig.n);
  const auto blocks = lfsr_pattern_blocks(
      static_cast<int>(rig.n.primary_inputs().size()), 8, 42);
  const double cov = fault_coverage(rig.n, blocks, faults);
  EXPECT_GT(cov, 0.98);
}

TEST(FaultSim, CoverageMonotoneInPatterns) {
  BinOpRig rig(cdfg::OpKind::kMul);
  const auto faults = enumerate_faults(rig.n);
  const auto few = lfsr_pattern_blocks(16, 1, 7);
  const auto many = lfsr_pattern_blocks(16, 8, 7);
  EXPECT_LE(fault_coverage(rig.n, few, faults),
            fault_coverage(rig.n, many, faults) + 1e-12);
}

TEST(FaultSim, SequentialDetection) {
  // Fault on the DFF requires two frames: load then observe.
  Netlist n;
  const int a = n.add_input("a");
  const int q = n.add_dff(-1, "q");
  n.set_dff_input(q, a);
  const int g = n.add_gate(GateType::kBuf, {q});
  n.mark_output(g);
  std::vector<Fault> faults{{q, -1, false}};
  const std::vector<std::vector<Bits>> frames{{Bits::all1()},
                                              {Bits::all1()}};
  const auto detected = sequential_fault_sim(n, frames, faults);
  EXPECT_TRUE(detected[0]);
  // One frame is not enough (the loaded 1 is never observed).
  const auto one = sequential_fault_sim(
      n, {{Bits::all1()}}, faults);
  EXPECT_FALSE(one[0]);
}

TEST(Expand, FullScanDatapathIsCombinational) {
  const hls::Synthesis r = hls::synthesize(cdfg::diffeq());
  rtl::Datapath dp = r.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  ExpandOptions opts;
  opts.width_override = 4;
  const ExpandedDesign x = expand_datapath(dp, opts);
  EXPECT_TRUE(x.netlist.flops().empty());
  EXPECT_FALSE(x.control_inputs.empty());
  EXPECT_GT(x.netlist.gate_count(), 100);
}

TEST(Expand, FunctionalDatapathKeepsFlops) {
  const hls::Synthesis r = hls::synthesize(cdfg::diffeq());
  ExpandOptions opts;
  opts.width_override = 4;
  const ExpandedDesign x = expand_datapath(r.rtl.datapath, opts);
  EXPECT_EQ(static_cast<int>(x.netlist.flops().size()),
            4 * r.rtl.datapath.num_regs());
}

TEST(Expand, PartialScanSplitsFlops) {
  const hls::Synthesis r = hls::synthesize(cdfg::diffeq());
  rtl::Datapath dp = r.rtl.datapath;
  dp.regs[0].test_kind = rtl::TestRegKind::kScan;
  ExpandOptions opts;
  opts.width_override = 4;
  const ExpandedDesign x = expand_datapath(dp, opts);
  EXPECT_EQ(static_cast<int>(x.netlist.flops().size()),
            4 * (dp.num_regs() - 1));
  // Scanned Q bits became PIs; D bits became POs.
  EXPECT_EQ(x.reg_q[0].size(), 4u);
  for (int bit : x.reg_q[0])
    EXPECT_EQ(x.netlist.node(bit).type, GateType::kInput);
}

TEST(Expand, ControllerSynthesisConsumesAllSignals) {
  const hls::Synthesis r = hls::synthesize(cdfg::diffeq());
  ExpandOptions opts;
  opts.width_override = 4;
  opts.controller = &r.rtl.controller;
  const ExpandedDesign x = expand_datapath(r.rtl.datapath, opts);
  EXPECT_TRUE(x.control_inputs.empty());
  EXPECT_FALSE(x.controller_state.empty());
  // Counter FFs exist beyond the register FFs.
  EXPECT_GT(static_cast<int>(x.netlist.flops().size()),
            4 * r.rtl.datapath.num_regs());
}

TEST(Expand, StandaloneFuMultiKind) {
  const Netlist n = expand_standalone_fu(
      {cdfg::OpKind::kAdd, cdfg::OpKind::kSub}, 8);
  // 3 operand words + 1 op-select line.
  EXPECT_EQ(n.primary_inputs().size(), 25u);
  EXPECT_EQ(n.primary_outputs().size(), 8u);
}

TEST(Bistgen, LfsrPeriodNontrivial) {
  Lfsr l(8, 1);
  const std::uint64_t start = l.state();
  int period = 0;
  do {
    l.step();
    ++period;
  } while (l.state() != start && period < 300);
  EXPECT_EQ(period, 255);  // maximal-length for width 8
}

TEST(Bistgen, LfsrAvoidsZeroState) {
  Lfsr l(16, 0);
  EXPECT_NE(l.state(), 0u);
}

TEST(Bistgen, MisrDistinguishesStreams) {
  Misr m1;
  Misr m2;
  for (int i = 0; i < 100; ++i) {
    m1.absorb(i);
    m2.absorb(i == 50 ? 999u : static_cast<std::uint64_t>(i));
  }
  EXPECT_NE(m1.signature(), m2.signature());
}

TEST(Bistgen, AccumulatorSequenceWraps) {
  const auto seq = accumulator_sequence(8, 0x9d, 0, 300);
  EXPECT_EQ(seq.size(), 300u);
  for (std::uint64_t v : seq) EXPECT_LT(v, 256u);
  // Odd increment: full period 256, so 256 distinct values.
  std::set<std::uint64_t> uniq(seq.begin(), seq.begin() + 256);
  EXPECT_EQ(uniq.size(), 256u);
}

TEST(Bistgen, PackWordPatternsLayout) {
  std::vector<std::vector<std::uint64_t>> ports{{0xAB, 0x01}, {0xFF, 0x00}};
  const auto blocks = pack_word_patterns(ports, 8);
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].size(), 16u);
  // Lane 0, port 0 = 0xAB: bit 0 set, bit 2 set...
  EXPECT_EQ(blocks[0][0].v & 1, 1u);   // bit0 of 0xAB
  EXPECT_EQ(blocks[0][2].v & 1, 0u);   // bit2 of 0xAB = 0
  EXPECT_EQ(blocks[0][8].v & 1, 1u);   // port 1 bit 0 of 0xFF
  // Lane 1, port 0 = 0x01.
  EXPECT_EQ((blocks[0][0].v >> 1) & 1, 1u);
  EXPECT_EQ((blocks[0][1].v >> 1) & 1, 0u);
}

}  // namespace
}  // namespace tsyn::gl
