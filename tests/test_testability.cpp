#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdfg/benchmarks.h"
#include "cdfg/loops.h"
#include "hls/fds.h"
#include "hls/synthesis.h"
#include "rtl/sgraph.h"
#include "testability/behavior_analysis.h"
#include "testability/ctrl_dft.h"
#include "testability/loop_avoid.h"
#include "testability/mobility_sched.h"
#include "testability/reg_assign.h"
#include "testability/rtl_scan.h"
#include "testability/scan_select.h"
#include "testability/testpoints.h"
#include "testability/transform.h"

namespace tsyn::testability {
namespace {

using cdfg::Cdfg;

TEST(ScanSelect, AllSelectorsBreakAllLoops) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    for (const auto& select : {select_scan_vars_mfvs,
                               select_scan_vars_loopcut,
                               select_scan_vars_boundary}) {
      const auto vars = select(g);
      EXPECT_TRUE(cdfg::breaks_all_cdfg_loops(g, vars)) << g.name();
    }
  }
}

TEST(ScanSelect, LoopFreeGraphsNeedNothing) {
  EXPECT_TRUE(select_scan_vars_mfvs(cdfg::dct4()).empty());
  EXPECT_TRUE(select_scan_vars_loopcut(cdfg::dct4()).empty());
  EXPECT_TRUE(select_scan_vars_boundary(cdfg::dct4()).empty());
}

TEST(ScanSelect, SharingBeatsOrMatchesMfvsOnRegisters) {
  // The point of [33]/[24]: fewer scan REGISTERS than the MFVS transplant,
  // never more (after binding).
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    if (cdfg::cdfg_loops(g).empty()) continue;
    const hls::Synthesis s = hls::synthesize(g);
    const int regs_mfvs =
        count_scan_registers(g, s.binding, select_scan_vars_mfvs(g));
    const int regs_loopcut =
        count_scan_registers(g, s.binding, select_scan_vars_loopcut(g));
    EXPECT_LE(regs_loopcut, regs_mfvs + 1) << g.name();
    EXPECT_GT(regs_loopcut, 0) << g.name();
  }
}

TEST(ScanSelect, ApplyScanMarksRegisters) {
  const Cdfg g = cdfg::diffeq();
  hls::Synthesis s = hls::synthesize(g);
  const auto vars = select_scan_vars_boundary(g);
  const int count = apply_scan(g, s.binding, vars, s.rtl.datapath);
  EXPECT_GT(count, 0);
  EXPECT_EQ(static_cast<int>(s.rtl.datapath.scan_registers().size()), count);
  // Scanned datapath must have no CDFG-class loops left.
  const rtl::LoopStats stats = rtl::loop_stats(s.rtl.datapath, true);
  EXPECT_EQ(stats.cdfg_loops, 0) << g.name();
}

TEST(RegAssign, IoMaximizingBeatsLeftEdgeOnIoCount) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis s = hls::synthesize(g);
    const IoAssignResult io = io_maximizing_assignment(s.binding.lifetimes);
    const int io_conventional =
        io_register_count(s.binding.lifetimes, s.binding.reg_of_lifetime);
    EXPECT_GE(io.num_io_regs, io_conventional) << g.name();
    // Register count stays within one of the left-edge optimum.
    EXPECT_LE(io.num_regs, s.binding.num_regs + 1) << g.name();
  }
}

TEST(RegAssign, MapIsConflictFree) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis s = hls::synthesize(g);
    hls::Binding b = s.binding;
    const IoAssignResult io = io_maximizing_assignment(b.lifetimes);
    EXPECT_NO_THROW(hls::rebind_registers(g, b, io.reg_of_lifetime))
        << g.name();
  }
}

TEST(MobilitySched, ValidAndNoWorseThanFds) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const int deadline = hls::critical_path_length(g) + 1;
    const hls::Schedule m = mobility_path_schedule(g, deadline);
    hls::validate_schedule(g, m, {});
    const cdfg::LifetimeAnalysis mlts =
        cdfg::analyze_lifetimes(g, m.step_of_op, m.num_steps);
    const IoAssignResult mio = io_maximizing_assignment(mlts);

    const hls::Schedule f = hls::force_directed_schedule(g, deadline);
    const cdfg::LifetimeAnalysis flts =
        cdfg::analyze_lifetimes(g, f.step_of_op, f.num_steps);
    const IoAssignResult fio = io_maximizing_assignment(flts);
    // Extra (non-I/O) registers never increase under the testability
    // scheduler.
    EXPECT_LE(mio.num_regs - mio.num_io_regs,
              fio.num_regs - fio.num_io_regs)
        << g.name();
  }
}

TEST(LoopAvoid, Fig1ReproducesThePaper) {
  // The paper's example: 3 control steps, 2 adders. A testability-blind
  // schedule/assignment can create the RA1->RA2->RA1 assignment loop; the
  // loop-avoiding flow must produce self-loops only.
  const Cdfg g = cdfg::fig1_example();
  LoopAvoidOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2}};
  opts.num_steps = 3;
  const LoopAvoidResult r = loop_avoiding_synthesis(g, opts);
  EXPECT_EQ(r.schedule.num_steps, 3);
  const hls::RtlDesign rtl = hls::build_rtl(g, r.schedule, r.binding);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  EXPECT_EQ(stats.breakable(), 0)
      << "assignment loops remain in the Figure-1 datapath";
}

TEST(LoopAvoid, PaperScheduleCreatesAssignmentLoop) {
  // Counter-check: the schedule the paper shows in Figure 1(b)
  // {+1:(1,A1), +2:(2,A2), +3:(2,A1), +4:(3,A2), +5:(3,A1)} really does
  // create an assignment loop in our datapath model.
  const Cdfg g = cdfg::fig1_example();
  hls::Schedule s;
  s.num_steps = 3;
  // Op order in fig1_example(): +1, +2, +3, +4, +5.
  s.step_of_op = {0, 1, 1, 2, 2};
  std::vector<int> fu_of_op = {0, 1, 0, 1, 0};  // A1=0, A2=1
  const hls::Binding b = hls::make_binding_with_fu_map(g, s, fu_of_op);
  const hls::RtlDesign rtl = hls::build_rtl(g, s, b);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  EXPECT_GT(stats.assignment_loops, 0);
}

TEST(LoopAvoid, AlternativeScheduleIsLoopFree) {
  // Figure 1(c): {+1:(1,A1), +2:(2,A1), +3:(1,A2), +4:(2,A2), +5:(3,A1)}
  // keeps each chain on one adder: self-loops only.
  const Cdfg g = cdfg::fig1_example();
  hls::Schedule s;
  s.num_steps = 3;
  s.step_of_op = {0, 1, 0, 1, 2};
  std::vector<int> fu_of_op = {0, 0, 1, 1, 0};
  const hls::Binding b = hls::make_binding_with_fu_map(g, s, fu_of_op);
  const hls::RtlDesign rtl = hls::build_rtl(g, s, b);
  const rtl::LoopStats stats = rtl::loop_stats(rtl.datapath);
  EXPECT_EQ(stats.breakable(), 0);
}

TEST(LoopAvoid, FarFewerAssignmentLoopsThanConventional) {
  // Under tight resources some cross-FU loops are unavoidable (the paper's
  // own caveat); the claim is a drastic reduction versus a testability-
  // blind flow at identical constraints.
  std::vector<Cdfg> graphs;
  graphs.push_back(cdfg::dct4());
  graphs.push_back(cdfg::tseng());
  for (const Cdfg& g : graphs) {
    LoopAvoidOptions opts;
    opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                    {cdfg::FuType::kMultiplier, 2}};
    opts.num_steps = hls::list_schedule(g, opts.resources).num_steps + 1;
    const LoopAvoidResult r = loop_avoiding_synthesis(g, opts);
    const hls::RtlDesign rtl = hls::build_rtl(g, r.schedule, r.binding);
    const int avoid = rtl::loop_stats(rtl.datapath).assignment_loops;

    const hls::Schedule cs = hls::force_directed_schedule(g, opts.num_steps);
    const hls::Binding cb = hls::make_binding(g, cs);
    const hls::RtlDesign crtl = hls::build_rtl(g, cs, cb);
    const int conv = rtl::loop_stats(crtl.datapath).assignment_loops;
    EXPECT_LE(avoid * 5, conv) << g.name() << " avoid=" << avoid
                               << " conv=" << conv;
  }
}

TEST(LoopAvoid, StatefulWithScanVarsLeavesNoUnbrokenLoops) {
  const Cdfg g = cdfg::iir_biquad();
  LoopAvoidOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  opts.scan_vars = select_scan_vars_loopcut(g);
  const LoopAvoidResult r = loop_avoiding_synthesis(g, opts);
  hls::RtlDesign rtl = hls::build_rtl(g, r.schedule, r.binding);
  apply_scan(g, r.binding, opts.scan_vars, rtl.datapath);
  const rtl::LoopStats after = rtl::loop_stats(rtl.datapath, true);
  EXPECT_EQ(after.breakable(), 0);
}

TEST(Transform, DeflectionsPreserveBehaviorShape) {
  const Cdfg g = cdfg::ar_lattice(3);
  const auto scan_vars = select_scan_vars_loopcut(g);
  const DeflectionResult r = insert_deflections(g, scan_vars);
  EXPECT_NO_THROW(r.transformed.validate());
  EXPECT_EQ(hls::critical_path_length(r.transformed),
            hls::critical_path_length(g));
  EXPECT_EQ(r.transformed.num_ops(), g.num_ops() + r.inserted);
  EXPECT_EQ(r.transformed.outputs().size(), g.outputs().size());
}

TEST(Transform, ScanRegisterCountNeverWorse) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    if (cdfg::cdfg_loops(g).empty()) continue;
    const auto scan_vars = select_scan_vars_loopcut(g);
    const DeflectionResult t = insert_deflections(g, scan_vars);

    const hls::Synthesis before = hls::synthesize(g);
    const hls::Synthesis after = hls::synthesize(t.transformed);
    const int regs_before =
        count_scan_registers(g, before.binding, scan_vars);
    const int regs_after =
        count_scan_registers(t.transformed, after.binding, scan_vars);
    EXPECT_LE(regs_after, regs_before) << g.name();
  }
}

TEST(CtrlDft, EliminatesAllConflicts) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    hls::Synthesis s = hls::synthesize(g);
    const ControllerDftResult r = apply_controller_dft(s.rtl.controller);
    EXPECT_EQ(r.conflicts_after, 0) << g.name();
    EXPECT_DOUBLE_EQ(r.pair_coverage_after, 1.0) << g.name();
    if (r.conflicts_before > 0) {
      EXPECT_GE(r.vectors_added, 1) << g.name();
    }
  }
}

TEST(CtrlDft, FewVectorsSuffice) {
  // "Only a few extra control vectors" (§3.5): the augmentation must stay
  // small relative to the functional vector count.
  hls::Synthesis s = hls::synthesize(cdfg::ewf());
  const int functional = s.rtl.controller.num_vectors();
  const ControllerDftResult r = apply_controller_dft(s.rtl.controller);
  EXPECT_LE(r.vectors_added, functional);
}

TEST(TestPoints, KLevelNeedsFewerThanScan) {
  const Cdfg g = cdfg::ewf();
  hls::SynthesisOptions so;
  so.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                {cdfg::FuType::kMultiplier, 1}};
  hls::Synthesis s = hls::synthesize(g, so);

  rtl::Datapath dp0 = s.rtl.datapath;
  const std::vector<int> scan_k0 = register_only_partial_scan(dp0);

  rtl::Datapath dp2 = s.rtl.datapath;
  const TestPointResult tp2 = insert_klevel_test_points(dp2, 2, false);
  EXPECT_LE(tp2.total(), static_cast<int>(scan_k0.size()) * 2);
  EXPECT_EQ(klevel_violations(dp2, 2, tp2.control_point_regs,
                              tp2.observe_point_regs),
            0);
}

TEST(TestPoints, LargerKNeedsFewerPoints) {
  const Cdfg g = cdfg::ar_lattice(4);
  const hls::Synthesis s = hls::synthesize(g);
  int prev = 1 << 20;
  for (int k = 0; k <= 3; ++k) {
    rtl::Datapath dp = s.rtl.datapath;
    const TestPointResult r = insert_klevel_test_points(dp, k, false);
    EXPECT_LE(r.total(), prev) << "k=" << k;
    prev = r.total();
  }
}

TEST(TestPoints, ApplyAddsIoStructure) {
  const Cdfg g = cdfg::iir_biquad();
  hls::Synthesis s = hls::synthesize(g);
  rtl::Datapath& dp = s.rtl.datapath;
  const std::size_t pis = dp.primary_inputs.size();
  const std::size_t pos = dp.primary_outputs.size();
  const TestPointResult r = insert_klevel_test_points(dp, 1, true);
  EXPECT_EQ(dp.primary_inputs.size(), pis + r.control_point_regs.size());
  EXPECT_EQ(dp.primary_outputs.size(), pos + r.observe_point_regs.size());
  EXPECT_NO_THROW(dp.validate());
}

TEST(RtlScan, BreaksAllLoopsBothWays) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    hls::SynthesisOptions so;
    so.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
    hls::Synthesis s = hls::synthesize(g, so);
    rtl::Datapath dp = s.rtl.datapath;
    const RtlScanResult r = rtl_partial_scan(dp, true);
    // After scanning + transparent registers, recompute: scan regs are
    // excluded; transparent FUs modelled by r only — verify via the
    // register-only graph when no transparent FUs were used.
    if (r.transparent_fus.empty()) {
      EXPECT_EQ(rtl::loop_stats(dp, true).breakable(), 0) << g.name();
    }
    const std::vector<int> reg_only = register_only_partial_scan(dp);
    EXPECT_LE(r.total(),
              static_cast<int>(reg_only.size() + dp.scan_registers().size()))
        << g.name();
  }
}

TEST(BehaviorAnalysis, SeedsAndPropagation) {
  const Cdfg g = cdfg::diffeq();
  const BehaviorTestability t = analyze_behavior(g);
  // Primary inputs are controllable; outputs observable.
  for (cdfg::VarId v : g.inputs())
    EXPECT_EQ(t.ctrl[v], CtrlClass::kControllable);
  for (cdfg::VarId v : g.outputs())
    EXPECT_EQ(t.obs[v], ObsClass::kObservable);
  // xl = x + dx with x partial: partial or better.
  const cdfg::VarId xl = g.find_var("xl");
  EXPECT_NE(t.ctrl[xl], CtrlClass::kUncontrollable);
}

TEST(BehaviorAnalysis, AddChainFullyControllable) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto c = g.add_op(cdfg::OpKind::kAdd, "c", {a, b});
  const auto d = g.add_op(cdfg::OpKind::kSub, "d", {c, b});
  g.mark_output(d);
  const BehaviorTestability t = analyze_behavior(g);
  EXPECT_EQ(t.ctrl[c], CtrlClass::kControllable);
  EXPECT_EQ(t.ctrl[d], CtrlClass::kControllable);
  EXPECT_EQ(t.obs[c], ObsClass::kObservable);
  EXPECT_EQ(t.obs[a], ObsClass::kObservable);
}

TEST(BehaviorAnalysis, ComparisonCollapsesObservability) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto c = g.add_op(cdfg::OpKind::kLt, "c", {a, b});
  g.mark_output(c);
  const BehaviorTestability t = analyze_behavior(g);
  EXPECT_EQ(t.obs[a], ObsClass::kPartial);
}

TEST(BehaviorAnalysis, TestStatementsImproveClasses) {
  // A behavior with an unobservable internal chain.
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto m = g.add_op(cdfg::OpKind::kMul, "m", {a, b});
  const auto c = g.add_op(cdfg::OpKind::kLt, "c", {m, b});
  g.mark_output(c);
  const BehaviorTestability before = analyze_behavior(g);
  EXPECT_EQ(before.obs[m], ObsClass::kPartial);

  TestStatementOptions opts;
  opts.include_partial = true;
  const TestStatementResult r = add_test_statements(g, opts);
  EXPECT_GT(r.observations, 0);
  const BehaviorTestability after = analyze_behavior(r.transformed);
  EXPECT_EQ(after.obs[m], ObsClass::kObservable);
}

TEST(BehaviorAnalysis, TestStatementsValidateAndSynthesize) {
  const Cdfg g = cdfg::iir_biquad();
  TestStatementOptions opts;
  opts.include_partial = true;
  const TestStatementResult r = add_test_statements(g, opts);
  EXPECT_NO_THROW(r.transformed.validate());
  EXPECT_NO_THROW(hls::synthesize(r.transformed));
}

}  // namespace
}  // namespace tsyn::testability
