#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "hiertest/hier_atpg.h"
#include "hiertest/testenv.h"
#include "hls/synthesis.h"

namespace tsyn::hiertest {
namespace {

using cdfg::Cdfg;
using cdfg::FuType;
using cdfg::OpKind;

TEST(TestEnv, InputsJustifiableOutputsPropagatable) {
  const Cdfg g = cdfg::diffeq();
  const EnvAnalysis env = analyze_test_environments(g);
  for (cdfg::VarId v : g.inputs()) EXPECT_TRUE(env.justifiable[v]);
  for (cdfg::VarId v : g.outputs()) EXPECT_TRUE(env.propagatable[v]);
}

TEST(TestEnv, AddChainHasFullEnvironment) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto c = g.add_op(OpKind::kAdd, "c", {a, b});
  const auto d = g.add_op(OpKind::kSub, "d", {c, b});
  g.mark_output(d);
  const EnvAnalysis env = analyze_test_environments(g);
  EXPECT_TRUE(env.op_has_env[0]);
  EXPECT_TRUE(env.op_has_env[1]);
  EXPECT_EQ(env.ops_with_env(), 2);
}

TEST(TestEnv, ComparisonBlocksPropagation) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto m = g.add_op(OpKind::kMul, "m", {a, b});
  const auto c = g.add_op(OpKind::kLt, "c", {m, b});
  g.mark_output(c);
  const EnvAnalysis env = analyze_test_environments(g);
  EXPECT_FALSE(env.propagatable[m]);
  EXPECT_FALSE(env.op_has_env[0]);  // mul's response can't reach a PO
}

TEST(TestEnv, MulNeedsIdentitySide) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto k2 = g.add_constant("two", 2);
  const auto m = g.add_op(OpKind::kMul, "m", {a, k2});  // a*2: not onto
  g.mark_output(m);
  const EnvAnalysis env = analyze_test_environments(g);
  EXPECT_FALSE(env.justifiable[m]);

  Cdfg h;
  const auto x = h.add_input("x");
  const auto one = h.add_constant("one", 1);
  const auto p = h.add_op(OpKind::kMul, "p", {x, one});
  h.mark_output(p);
  const EnvAnalysis env2 = analyze_test_environments(h);
  EXPECT_TRUE(env2.justifiable[p]);
}

TEST(TestEnv, StateCrossesIterationBoundary) {
  Cdfg g;
  const auto x = g.add_input("x");
  const auto s = g.add_state("s");
  const auto u = g.add_op(OpKind::kAdd, "u", {s, x});
  g.set_state_update(s, u);
  g.mark_output(u);
  const EnvAnalysis env = analyze_test_environments(g);
  EXPECT_TRUE(env.justifiable[s]);   // via the update, one iteration later
  EXPECT_TRUE(env.op_has_env[0]);
}

TEST(TestEnv, EnvAwareBindingCoversAtLeastAsManyModules) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Schedule s = hls::list_schedule(
        g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
    const EnvAnalysis env = analyze_test_environments(g);
    const hls::Binding conventional = hls::make_binding(g, s);
    const hls::Binding aware = env_aware_binding(g, s);
    const double base =
        conventional.num_fus() == 0
            ? 1.0
            : static_cast<double>(
                  modules_with_env(g, conventional, env)) /
                  conventional.num_fus();
    const double opt =
        aware.num_fus() == 0
            ? 1.0
            : static_cast<double>(modules_with_env(g, aware, env)) /
                  aware.num_fus();
    EXPECT_GE(opt, base - 0.26) << g.name();
  }
}

TEST(HierAtpg, ModuleTestsCheaperThanFlat) {
  const Cdfg g = cdfg::tseng();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 1}});
  const hls::Binding b = hls::make_binding(g, s);
  const HierAtpgResult hier = hierarchical_atpg(g, b, 6);
  const FlatAtpgResult flat = flat_atpg(g, s, b, 6);
  EXPECT_GT(hier.module_fault_coverage, 0.5);
  EXPECT_GT(flat.fault_coverage, 0.9);
  // The hierarchical decomposition must spend fewer implications: its
  // PODEM instances run on small cones.
  EXPECT_LT(hier.effort.implications, flat.effort.implications);
}

TEST(HierAtpg, EnvLessModulesUncovered) {
  // A behavior whose multiplier response funnels through a comparison has
  // no environment for the multiplier: hierarchical ATPG must not claim
  // its faults.
  Cdfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto m = g.add_op(OpKind::kMul, "m", {a, b});
  const auto c = g.add_op(OpKind::kLt, "c", {m, b});
  g.mark_output(c);
  const hls::Schedule s = hls::list_schedule(g, {});
  const hls::Binding bind = hls::make_binding(g, s);
  const HierAtpgResult hier = hierarchical_atpg(g, bind, 4);
  EXPECT_LT(hier.modules_with_env, hier.modules);
  EXPECT_LT(hier.module_fault_coverage, 1.0);
}

}  // namespace
}  // namespace tsyn::hiertest
