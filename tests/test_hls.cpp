#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdfg/benchmarks.h"
#include "cdfg/generator.h"
#include "hls/datapath_builder.h"
#include "hls/fds.h"
#include "hls/synthesis.h"

namespace tsyn::hls {
namespace {

using cdfg::Cdfg;
using cdfg::FuType;
using cdfg::OpKind;

TEST(Asap, CriticalPathOfChain) {
  Cdfg g;
  const auto a = g.add_input("a");
  auto v = a;
  for (int i = 0; i < 5; ++i)
    v = g.add_op(OpKind::kAdd, "t" + std::to_string(i), {v, a});
  g.mark_output(v);
  EXPECT_EQ(critical_path_length(g), 5);
  const Schedule s = asap_schedule(g);
  EXPECT_EQ(s.num_steps, 5);
  EXPECT_EQ(s.step_of_op[0], 0);
  EXPECT_EQ(s.step_of_op[4], 4);
}

TEST(Asap, ParallelOpsShareStepZero) {
  const Cdfg g = cdfg::dct4();
  const Schedule s = asap_schedule(g);
  int at_zero = 0;
  for (int step : s.step_of_op)
    if (step == 0) ++at_zero;
  EXPECT_GE(at_zero, 4);  // the four butterflies are independent
}

TEST(Alap, RespectsDeadline) {
  const Cdfg g = cdfg::diffeq();
  const int cp = critical_path_length(g);
  const Schedule s = alap_schedule(g, cp + 2);
  EXPECT_EQ(s.num_steps, cp + 2);
  validate_schedule(g, s, {});
  EXPECT_THROW(alap_schedule(g, cp - 1), std::runtime_error);
}

TEST(Mobility, ZeroOnCriticalPath) {
  const Cdfg g = cdfg::diffeq();
  const int cp = critical_path_length(g);
  const std::vector<int> m = mobility(g, cp);
  EXPECT_EQ(*std::min_element(m.begin(), m.end()), 0);
  // With slack added, every op gains at least that much mobility.
  const std::vector<int> m2 = mobility(g, cp + 3);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m2[i], m[i] + 3);
}

TEST(ListSchedule, RespectsResources) {
  const Cdfg g = cdfg::diffeq();
  Resources res{{FuType::kMultiplier, 2}, {FuType::kAlu, 1}};
  const Schedule s = list_schedule(g, res);
  validate_schedule(g, s, res);
  const auto peak = peak_resource_usage(g, s);
  EXPECT_LE(peak.at(FuType::kMultiplier), 2);
  EXPECT_LE(peak.at(FuType::kAlu), 1);
}

TEST(ListSchedule, TighterResourcesLongerSchedule) {
  const Cdfg g = cdfg::ewf();
  Resources loose{{FuType::kMultiplier, 4}, {FuType::kAlu, 4}};
  Resources tight{{FuType::kMultiplier, 1}, {FuType::kAlu, 1}};
  EXPECT_LE(list_schedule(g, loose).num_steps,
            list_schedule(g, tight).num_steps);
}

TEST(ListSchedule, UnconstrainedEqualsCriticalPath) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const Schedule s = list_schedule(g, {});
    EXPECT_EQ(s.num_steps, critical_path_length(g)) << g.name();
  }
}

TEST(Fds, MeetsDeadlineAndDependences) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const int cp = critical_path_length(g);
    const Schedule s = force_directed_schedule(g, cp + 1);
    EXPECT_EQ(s.num_steps, cp + 1) << g.name();
    validate_schedule(g, s, {});
  }
}

TEST(Fds, BalancesMultipliers) {
  // diffeq with slack: FDS should not pile all 6 muls into 2 steps.
  const Cdfg g = cdfg::diffeq();
  const Schedule s = force_directed_schedule(g, critical_path_length(g) + 2);
  const auto peak = peak_resource_usage(g, s);
  EXPECT_LE(peak.at(FuType::kMultiplier), 3);
}

TEST(Binding, ConventionalIsValid) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const Schedule s = list_schedule(g, {});
    const Binding b = make_binding(g, s);
    EXPECT_NO_THROW(validate_binding(g, s, b)) << g.name();
    EXPECT_GT(b.num_regs, 0) << g.name();
  }
}

TEST(Binding, FuCountMatchesPeakUsage) {
  const Cdfg g = cdfg::diffeq();
  Resources res{{FuType::kMultiplier, 2}, {FuType::kAlu, 2}};
  const Schedule s = list_schedule(g, res);
  const Binding b = make_binding(g, s);
  int muls = 0;
  for (const auto t : b.fu_type)
    if (t == FuType::kMultiplier) ++muls;
  const auto peak = peak_resource_usage(g, s);
  EXPECT_EQ(muls, peak.at(FuType::kMultiplier));
}

TEST(Binding, CopiesGetNoFu) {
  const Cdfg g = cdfg::fir(4);
  const Schedule s = list_schedule(g, {});
  const Binding b = make_binding(g, s);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    if (g.op(o).kind == OpKind::kCopy) {
      EXPECT_EQ(b.fu_of_op[o], -1);
    }
}

TEST(Binding, RebindRejectsConflicts) {
  const Cdfg g = cdfg::diffeq();
  const Schedule s = list_schedule(g, {});
  Binding b = make_binding(g, s);
  // All lifetimes into one register: must throw (overlaps exist).
  std::vector<int> all_zero(b.lifetimes.lifetimes.size(), 0);
  EXPECT_THROW(rebind_registers(g, b, all_zero), std::runtime_error);
}

TEST(Binding, OpsCompatibleRules) {
  Cdfg g;
  const auto a = g.add_input("a");
  const auto t1 = g.add_op(OpKind::kAdd, "t1", {a, a});
  const auto t2 = g.add_op(OpKind::kAdd, "t2", {a, a});
  const auto t3 = g.add_op(OpKind::kMul, "t3", {t1, t2});
  g.mark_output(t3);
  Schedule s;
  s.num_steps = 2;
  s.step_of_op = {0, 0, 1};
  EXPECT_FALSE(ops_compatible(g, s, 0, 1));  // same step, same type
  EXPECT_FALSE(ops_compatible(g, s, 0, 2));  // different type
  s.step_of_op = {0, 1, 1};
  EXPECT_TRUE(ops_compatible(g, s, 0, 1));
}

TEST(Synthesis, EndToEndOnAllBenchmarks) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    SynthesisOptions opts;
    const Synthesis result = synthesize(g, opts);
    EXPECT_NO_THROW(result.rtl.datapath.validate()) << g.name();
    EXPECT_EQ(result.rtl.controller.num_vectors(),
              result.schedule.num_steps)
        << g.name();
    EXPECT_EQ(result.rtl.datapath.primary_outputs.size(),
              g.outputs().size())
        << g.name();
  }
}

TEST(Synthesis, ResourceConstrainedVariant) {
  const Cdfg g = cdfg::diffeq();
  SynthesisOptions opts;
  opts.resources = Resources{{FuType::kMultiplier, 2}, {FuType::kAlu, 1}};
  const Synthesis result = synthesize(g, opts);
  int muls = 0;
  for (const auto& fu : result.rtl.datapath.fus)
    if (fu.type == FuType::kMultiplier) ++muls;
  EXPECT_LE(muls, 2);
}

TEST(Datapath, FuPortsAreRegisterOrConstantDriven) {
  const Synthesis r = synthesize(cdfg::ewf());
  for (const auto& fu : r.rtl.datapath.fus)
    for (const auto& port : fu.port_drivers)
      for (const auto& src : port)
        EXPECT_NE(src.kind, rtl::Source::Kind::kFu);
}

TEST(Datapath, OutputsAreRegistered) {
  const Synthesis r = synthesize(cdfg::diffeq());
  for (const auto& po : r.rtl.datapath.primary_outputs)
    EXPECT_EQ(po.source.kind, rtl::Source::Kind::kRegister);
}

TEST(Datapath, ControllerSignalsCoverMuxesAndLoads) {
  const Synthesis r = synthesize(cdfg::diffeq());
  const rtl::Datapath& dp = r.rtl.datapath;
  int expected = 0;
  for (const auto& reg : dp.regs) {
    if (reg.drivers.size() > 1) ++expected;  // select
    ++expected;                              // load enable
  }
  for (const auto& fu : dp.fus) {
    for (const auto& port : fu.port_drivers)
      if (port.size() > 1) ++expected;
    if (fu.op_kinds.size() > 1) ++expected;
  }
  EXPECT_EQ(r.rtl.controller.num_signals(), expected);
}

TEST(Datapath, EveryRegisterWrittenOrInput) {
  const Synthesis r = synthesize(cdfg::ewf());
  for (const auto& reg : r.rtl.datapath.regs)
    EXPECT_FALSE(reg.drivers.empty());
}

TEST(Datapath, RandomGraphsSynthesize) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cdfg::GeneratorParams p;
    p.num_ops = 20;
    p.num_states = 2;
    p.seed = seed;
    const Cdfg g = cdfg::random_cdfg(p);
    EXPECT_NO_THROW({
      const Synthesis r = synthesize(g);
      r.rtl.datapath.validate();
    }) << "seed " << seed;
  }
}

TEST(Datapath, MuxCountsPositiveWhenSharing) {
  const Cdfg g = cdfg::diffeq();
  SynthesisOptions opts;
  opts.resources = Resources{{FuType::kMultiplier, 1}, {FuType::kAlu, 1}};
  const Synthesis r = synthesize(g, opts);
  EXPECT_GT(r.rtl.datapath.mux2_count(), 0);
}

}  // namespace
}  // namespace tsyn::hls
