// Cross-layer provenance: component map construction, node attribution
// during expansion, the ledger join, determinism across thread counts,
// and the netlist name-uniqueness contract it relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "compaction/compaction.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/faultsim.h"
#include "hls/synthesis.h"
#include "observe/ledger.h"
#include "observe/provenance.h"

namespace tsyn::observe {
namespace {

using gl::Netlist;

/// Full-scan synthesis + expansion with provenance recording, the rig the
/// acceptance tests run on.
struct ScanDesign {
  cdfg::Cdfg g;
  hls::Synthesis syn;
  rtl::Datapath dp;
  gl::ExpandedDesign ed;
  std::vector<gl::Fault> faults;
};

ScanDesign full_scan(cdfg::Cdfg behavior, int width) {
  ScanDesign d;
  d.g = std::move(behavior);
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  d.syn = hls::synthesize(d.g, opts);
  d.dp = d.syn.rtl.datapath;
  for (auto& reg : d.dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions x;
  x.width_override = width;
  d.ed = gl::expand_datapath(d.dp, x);
  d.faults = gl::enumerate_faults(d.ed.netlist);
  return d;
}

// ---------------------------------------------------------------------------
// Component map structure
// ---------------------------------------------------------------------------

TEST(ComponentMap, CoversDatapathStructure) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const ProvenanceMap& map = d.ed.provenance;
  ASSERT_FALSE(map.empty());

  // One component per PI, constant, register; a reg-mux per driven
  // register; one per FU; a fu-mux per multi-driver port. No controller
  // (full-scan expansion runs without one).
  EXPECT_EQ(map.find(CompKind::kController, -1), -1);
  for (std::size_t i = 0; i < d.dp.primary_inputs.size(); ++i)
    EXPECT_GE(map.find(CompKind::kPrimaryInput, static_cast<int>(i)), 0);
  for (int r = 0; r < d.dp.num_regs(); ++r) {
    EXPECT_GE(map.find(CompKind::kRegister, r), 0);
    const int mux = map.find(CompKind::kRegMux, r);
    EXPECT_EQ(mux >= 0, !d.dp.regs[r].drivers.empty());
  }
  for (int f = 0; f < d.dp.num_fus(); ++f) {
    EXPECT_GE(map.find(CompKind::kFu, f), 0);
    for (std::size_t p = 0; p < d.dp.fus[f].port_drivers.size(); ++p) {
      const int mux = map.find(CompKind::kFuMux, f, static_cast<int>(p));
      EXPECT_EQ(mux >= 0, d.dp.fus[f].port_drivers[p].size() > 1);
    }
  }

  // Names are the stable human keys.
  const int r0 = map.find(CompKind::kRegister, 0);
  EXPECT_EQ(map.components[static_cast<std::size_t>(r0)].name,
            d.dp.regs[0].name);
  const int f0 = map.find(CompKind::kFu, 0);
  EXPECT_EQ(map.components[static_cast<std::size_t>(f0)].name,
            d.dp.fus[0].name);
}

TEST(ComponentMap, ControllerComponentOnlyWhenRequested) {
  const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), {});
  const ProvenanceMap with =
      make_component_map(syn.rtl.datapath, /*with_controller=*/true);
  const ProvenanceMap without =
      make_component_map(syn.rtl.datapath, /*with_controller=*/false);
  EXPECT_GE(with.find(CompKind::kController, -1), 0);
  EXPECT_EQ(without.find(CompKind::kController, -1), -1);
  EXPECT_EQ(with.components.size(), without.components.size() + 1);
}

TEST(ComponentMap, OpListsAreSortedAndDeduped) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  for (const ProvComponent& c : d.ed.provenance.components) {
    EXPECT_TRUE(std::is_sorted(c.ops.begin(), c.ops.end()));
    EXPECT_EQ(std::adjacent_find(c.ops.begin(), c.ops.end()), c.ops.end());
    for (cdfg::OpId o : c.ops) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, d.g.num_ops());
    }
  }
}

TEST(ComponentMap, DegradesToEmptyOpsOnHandBuiltDatapath) {
  rtl::Datapath dp;
  dp.name = "hand";
  dp.regs.resize(2);
  dp.regs[0].name = "A";
  dp.regs[0].width = 4;
  dp.regs[1].name = "B";
  dp.regs[1].width = 4;
  dp.regs[1].drivers.push_back({rtl::Source::Kind::kRegister, 0});
  // No driver_ops recorded at all — the map must still build.
  const ProvenanceMap map = make_component_map(dp, false);
  EXPECT_GE(map.find(CompKind::kRegister, 0), 0);
  EXPECT_GE(map.find(CompKind::kRegMux, 1), 0);
  for (const ProvComponent& c : map.components) EXPECT_TRUE(c.ops.empty());
}

// ---------------------------------------------------------------------------
// Node attribution (the expand-side contract)
// ---------------------------------------------------------------------------

TEST(Attribution, EveryNodeAttributedOnFullScan) {
  for (int bench = 0; bench < 2; ++bench) {
    const ScanDesign d =
        full_scan(bench == 0 ? cdfg::diffeq() : cdfg::tseng(), 4);
    const ProvenanceMap& map = d.ed.provenance;
    ASSERT_EQ(static_cast<int>(map.comp_of_node.size()),
              d.ed.netlist.num_nodes());
    for (int n = 0; n < d.ed.netlist.num_nodes(); ++n) {
      const int c = map.component_of(n);
      ASSERT_GE(c, 0) << "node " << n << " unattributed";
      ASSERT_LT(c, static_cast<int>(map.components.size()));
    }
    EXPECT_EQ(map.num_attributed(), d.ed.netlist.num_nodes());
  }
}

TEST(Attribution, EveryCollapsedFaultMapsToComponentWithOps) {
  // The acceptance criterion: every collapsed fault on diffeq and tseng
  // full-scan maps to exactly one RTL component, and that component names
  // at least one CDFG op — no orphans anywhere in the chain.
  for (int bench = 0; bench < 2; ++bench) {
    const ScanDesign d =
        full_scan(bench == 0 ? cdfg::diffeq() : cdfg::tseng(), 4);
    const ProvenanceMap& map = d.ed.provenance;
    for (const gl::Fault& f : d.faults) {
      const int c = map.component_of(f.node);
      ASSERT_GE(c, 0) << "fault on node " << f.node << " is an orphan";
      EXPECT_GE(map.components[static_cast<std::size_t>(c)].ops.size(), 1u)
          << "component " << map.components[static_cast<std::size_t>(c)].name
          << " has a fault but no CDFG ops";
    }
  }
}

TEST(Attribution, RecordingOffLeavesMapEmptyAndNetlistIdentical) {
  const cdfg::Cdfg g = cdfg::diffeq();
  hls::SynthesisOptions sopts;
  const hls::Synthesis syn = hls::synthesize(g, sopts);
  rtl::Datapath dp = syn.rtl.datapath;
  for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
  gl::ExpandOptions on;
  on.width_override = 4;
  gl::ExpandOptions off = on;
  off.record_provenance = false;
  const gl::ExpandedDesign a = gl::expand_datapath(dp, on);
  const gl::ExpandedDesign b = gl::expand_datapath(dp, off);
  EXPECT_TRUE(b.provenance.empty());
  EXPECT_TRUE(b.provenance.comp_of_node.empty());
  ASSERT_EQ(a.netlist.num_nodes(), b.netlist.num_nodes());
  for (int n = 0; n < a.netlist.num_nodes(); ++n) {
    EXPECT_EQ(a.netlist.node(n).type, b.netlist.node(n).type);
    EXPECT_EQ(a.netlist.node(n).fanins, b.netlist.node(n).fanins);
    EXPECT_EQ(a.netlist.node(n).name, b.netlist.node(n).name);
  }
}

TEST(Attribution, ControlLinesBelongToConsumerMux) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const ProvenanceMap& map = d.ed.provenance;
  const Netlist& n = d.ed.netlist;
  // Free control inputs carry the consumer's select/load names; each must
  // be attributed to a mux (or register) component, never left orphaned.
  for (int node : d.ed.control_inputs) {
    const int c = map.component_of(node);
    ASSERT_GE(c, 0);
    const CompKind k = map.components[static_cast<std::size_t>(c)].kind;
    EXPECT_TRUE(k == CompKind::kRegMux || k == CompKind::kFuMux ||
                k == CompKind::kRegister || k == CompKind::kFu)
        << n.node(node).name << " attributed to kind " << to_string(k);
  }
}

TEST(Attribution, ControllerModeAttributesCounterToController) {
  const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), {});
  gl::ExpandOptions x;
  x.width_override = 4;
  x.controller = &syn.rtl.controller;
  const gl::ExpandedDesign ed = gl::expand_datapath(syn.rtl.datapath, x);
  const ProvenanceMap& map = ed.provenance;
  const int ctl = map.find(CompKind::kController, -1);
  ASSERT_GE(ctl, 0);
  for (int ff : ed.controller_state) EXPECT_EQ(map.component_of(ff), ctl);
  EXPECT_EQ(map.num_attributed(), ed.netlist.num_nodes());
}

// ---------------------------------------------------------------------------
// Netlist name uniqueness (satellite)
// ---------------------------------------------------------------------------

TEST(NetlistNames, CollisionsGetHashSuffix) {
  Netlist n;
  const int a = n.add_input("x");
  const int b = n.add_input("x");
  const int c = n.add_gate(gl::GateType::kAnd, {a, b}, "x");
  EXPECT_EQ(n.node(a).name, "x");
  EXPECT_EQ(n.node(b).name, "x#1");
  EXPECT_EQ(n.node(c).name, "x#2");
  // A name that already looks like a suffixed one is respected, and the
  // probe skips over it.
  const int d = n.add_gate(gl::GateType::kOr, {a, b}, "y#1");
  const int e = n.add_gate(gl::GateType::kOr, {a, c}, "y#1");
  EXPECT_EQ(n.node(d).name, "y#1");
  EXPECT_EQ(n.node(e).name, "y#1#1");
  n.mark_output(c);
  n.validate();  // debug builds assert uniqueness
}

TEST(NetlistNames, ExpansionNamesAreUnique) {
  // Before the fix, every multi-driver port of one FU named its select
  // lines identically ("sel_<fu>#k"); the collapsed fault report could
  // not tell them apart.
  for (int mode = 0; mode < 2; ++mode) {
    const hls::Synthesis syn = hls::synthesize(cdfg::diffeq(), {});
    rtl::Datapath dp = syn.rtl.datapath;
    if (mode == 0)
      for (auto& reg : dp.regs) reg.test_kind = rtl::TestRegKind::kScan;
    gl::ExpandOptions x;
    x.width_override = 4;
    if (mode == 1) x.controller = &syn.rtl.controller;
    const Netlist n = gl::expand_datapath(dp, x).netlist;
    std::set<std::string> seen;
    for (int i = 0; i < n.num_nodes(); ++i) {
      const std::string& name = n.node(i).name;
      if (name.empty()) continue;
      EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    }
  }
}

TEST(NetlistNames, FuPortSelectsCarryPortIndex) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const Netlist& n = d.ed.netlist;
  bool saw_port_sel = false;
  for (int node : d.ed.control_inputs) {
    const std::string& name = n.node(node).name;
    if (name.rfind("sel_", 0) == 0 && name.find("_p") != std::string::npos)
      saw_port_sel = true;
  }
  EXPECT_TRUE(saw_port_sel)
      << "expected at least one per-port FU select input (sel_<fu>_p<k>)";
}

// ---------------------------------------------------------------------------
// Ledger join: reconciliation + determinism
// ---------------------------------------------------------------------------

#ifndef TSYN_LEDGER_NOOP

/// The CLI report pipeline: compacted ATPG with the ledger on, final
/// grading pass, snapshot.
LedgerSnapshot run_campaign(const Netlist& n,
                            const std::vector<gl::Fault>& faults,
                            double* coverage = nullptr) {
  ledger_reset();
  ledger_enable();
  compaction::CompactionOptions copts;
  copts.mode = compaction::CompactMode::kStatic;
  const compaction::CompactedCampaign c =
      compaction::run_compacted_atpg(n, faults, copts);
  {
    LedgerPhase phase("ship.ndetect");
    (void)compaction::detection_matrix(n, c.patterns, faults);
  }
  ledger_disable();
  if (coverage) *coverage = c.campaign.fault_coverage;
  return ledger_snapshot();
}

TEST(CoverageAttribution, ComponentCountsReconcileExactly) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  double campaign_cov = 0;
  const LedgerSnapshot led =
      run_campaign(d.ed.netlist, d.faults, &campaign_cov);
  const ProvenanceAttribution attr =
      attribute_coverage(d.ed.provenance, led);

  EXPECT_EQ(attr.total_faults,
            static_cast<std::int64_t>(led.journeys.size()));
  EXPECT_EQ(attr.orphan_faults, 0);

  // Exact integer reconciliation: every journey lands in one component.
  std::int64_t faults = 0, detected = 0, dropped = 0, redundant = 0,
               aborted = 0, undetected = 0, decisions = 0;
  for (const ComponentCoverage& c : attr.components) {
    faults += c.faults;
    detected += c.detected;
    dropped += c.dropped;
    redundant += c.redundant;
    aborted += c.aborted;
    undetected += c.undetected;
    decisions += c.decisions;
  }
  EXPECT_EQ(faults, attr.total_faults);
  EXPECT_EQ(detected, led.detected);
  EXPECT_EQ(dropped, led.dropped);
  EXPECT_EQ(redundant, led.redundant);
  EXPECT_EQ(aborted, led.aborted);
  EXPECT_EQ(undetected, led.undetected);
  EXPECT_EQ(decisions, led.total_decisions);
  EXPECT_EQ(detected + dropped, attr.total_covered);

  // The campaign's global coverage is exactly what the attribution
  // restates: covered / universe.
  ASSERT_GT(attr.total_faults, 0);
  EXPECT_NEAR(static_cast<double>(attr.total_covered) /
                  static_cast<double>(attr.total_faults),
              campaign_cov, 1e-9);
}

TEST(CoverageAttribution, WeightedOpSharesReconcile) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const LedgerSnapshot led = run_campaign(d.ed.netlist, d.faults);
  const ProvenanceAttribution attr =
      attribute_coverage(d.ed.provenance, led);

  double faults_w = attr.unattributed_faults_w;
  double covered_w = attr.unattributed_covered_w;
  for (const OpCoverage& oc : attr.ops) {
    faults_w += oc.faults_w;
    covered_w += oc.covered_w;
  }
  EXPECT_NEAR(faults_w, static_cast<double>(attr.total_faults), 1e-6);
  EXPECT_NEAR(covered_w, static_cast<double>(attr.total_covered), 1e-6);
  // Full scan, all cross references recorded: nothing unattributed.
  EXPECT_EQ(attr.unattributed_faults_w, 0.0);

  // worst_components: ascending coverage, every fault-bearing component
  // listed exactly once.
  for (std::size_t i = 1; i < attr.worst_components.size(); ++i) {
    const auto& prev = attr.components[static_cast<std::size_t>(
        attr.worst_components[i - 1])];
    const auto& cur = attr.components[static_cast<std::size_t>(
        attr.worst_components[i])];
    EXPECT_LE(prev.coverage(), cur.coverage());
  }
  std::int64_t bearing = 0;
  for (const ComponentCoverage& c : attr.components) bearing += c.faults > 0;
  EXPECT_EQ(static_cast<std::int64_t>(attr.worst_components.size()), bearing);
}

TEST(CoverageAttribution, JsonByteIdenticalAcrossThreadCounts) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const Netlist& n = d.ed.netlist;
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 8, 0x5EED);
  ProvenanceMap map = d.ed.provenance;
  annotate_ops(map, d.g, &d.syn.schedule.step_of_op);

  std::vector<std::string> json;
  for (int threads : {1, 2, 8}) {
    ledger_reset();
    ledger_enable();
    record_universe(static_cast<long>(d.faults.size()));
    gl::fault_coverage(n, blocks, d.faults, nullptr,
                       gl::FaultSimOptions{threads});
    ledger_disable();
    const ProvenanceAttribution attr =
        attribute_coverage(map, ledger_snapshot());
    json.push_back(provenance_to_json(map, attr));
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(json[0], json[2]);
  EXPECT_NE(json[0].find("\"schema\": 1"), std::string::npos);
}

TEST(CoverageAttribution, HeatVectorsMergeMuxesAndBoundToUnit) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  const LedgerSnapshot led = run_campaign(d.ed.netlist, d.faults);
  const ProvenanceAttribution attr =
      attribute_coverage(d.ed.provenance, led);

  const std::vector<double> rh =
      register_heat(d.ed.provenance, attr, d.dp.num_regs());
  const std::vector<double> fh =
      fu_heat(d.ed.provenance, attr, d.dp.num_fus());
  const std::vector<double> oh =
      op_heat(d.ed.provenance, attr, d.g.num_ops());
  ASSERT_EQ(static_cast<int>(rh.size()), d.dp.num_regs());
  ASSERT_EQ(static_cast<int>(fh.size()), d.dp.num_fus());
  ASSERT_EQ(static_cast<int>(oh.size()), d.g.num_ops());
  // Every register and FU carries faults on full scan, so no -1 entries;
  // all values are coverages.
  for (double v : rh) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double v : fh) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double v : oh) EXPECT_LE(v, 1.0);
}

#endif  // !TSYN_LEDGER_NOOP

// ---------------------------------------------------------------------------
// Op labels
// ---------------------------------------------------------------------------

TEST(AnnotateOps, LabelsReconstructSourceLines) {
  const ScanDesign d = full_scan(cdfg::diffeq(), 4);
  ProvenanceMap map = d.ed.provenance;
  annotate_ops(map, d.g, &d.syn.schedule.step_of_op);
  ASSERT_EQ(static_cast<int>(map.op_label.size()), map.num_ops());
  // Every op referenced by some component has a label with the op kind and
  // its schedule step.
  for (const ProvComponent& c : map.components)
    for (cdfg::OpId o : c.ops) {
      const std::string& label = map.op_label[static_cast<std::size_t>(o)];
      ASSERT_FALSE(label.empty());
      EXPECT_NE(label.find(cdfg::to_string(d.g.op(o).kind)), std::string::npos);
      EXPECT_NE(label.find("@s"), std::string::npos);
    }
  // Without a schedule the step suffix is omitted.
  ProvenanceMap bare = d.ed.provenance;
  annotate_ops(bare, d.g, nullptr);
  for (const std::string& label : bare.op_label)
    EXPECT_EQ(label.find("@s"), std::string::npos);
}

TEST(ProvenanceBuilder, ScopesNestAndFlushByRange) {
  ProvenanceMap map;
  map.components.resize(3);
  ProvenanceBuilder b(&map);
  EXPECT_TRUE(b.enabled());
  b.push(0, 0);   // nodes 0.. belong to comp 0
  b.push(1, 2);   // nodes 2.. to comp 1 (nested)
  b.pop(4);       // nodes 4.. back to comp 0
  b.pop(5);       // nodes 5.. unattributed
  b.finish(6);
  ASSERT_EQ(map.comp_of_node.size(), 6u);
  EXPECT_EQ(map.comp_of_node[0], 0);
  EXPECT_EQ(map.comp_of_node[1], 0);
  EXPECT_EQ(map.comp_of_node[2], 1);
  EXPECT_EQ(map.comp_of_node[3], 1);
  EXPECT_EQ(map.comp_of_node[4], 0);
  EXPECT_EQ(map.comp_of_node[5], -1);
  EXPECT_EQ(map.num_attributed(), 5);

  ProvenanceBuilder noop(nullptr);
  EXPECT_FALSE(noop.enabled());
  noop.push(0, 0);
  noop.pop(3);
  noop.finish(3);  // no map to touch; must not crash
}

}  // namespace
}  // namespace tsyn::observe
