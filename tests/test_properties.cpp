// Property-based sweeps: full-flow invariants over randomly generated
// behaviors and netlists. These are the "does the whole stack stay
// consistent" checks — every seed exercises a different CDFG shape.
#include <gtest/gtest.h>

#include <map>

#include "bist/share.h"
#include "bist/test_registers.h"
#include "bist/tfb.h"
#include "cdfg/generator.h"
#include "cdfg/interp.h"
#include "cdfg/lifetime.h"
#include "cdfg/loops.h"
#include "cdfg/parser.h"
#include "gatelevel/expand.h"
#include "gatelevel/faults.h"
#include "gatelevel/atpg_comb.h"
#include "gatelevel/bistgen.h"
#include "gatelevel/faultsim.h"
#include "gatelevel/scoap.h"
#include "hls/synthesis.h"
#include "rtl/sgraph.h"
#include "graph/mfvs.h"
#include "testability/loop_avoid.h"
#include "testability/scan_select.h"
#include "util/rng.h"

namespace tsyn {
namespace {

cdfg::Cdfg make_random(std::uint64_t seed, int ops = 24, int states = 2) {
  cdfg::GeneratorParams p;
  p.num_ops = ops;
  p.num_states = states;
  p.seed = seed;
  p.mul_fraction = 0.25;
  return cdfg::random_cdfg(p);
}

class FlowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowSweep, ParserRoundTripIsStable) {
  const cdfg::Cdfg g = make_random(GetParam());
  const std::string once = cdfg::serialize_cdfg(g);
  const std::string twice = cdfg::serialize_cdfg(cdfg::parse_cdfg(once));
  EXPECT_EQ(once, twice);
}

TEST_P(FlowSweep, SynthesisInvariants) {
  const cdfg::Cdfg g = make_random(GetParam());
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 1}};
  const hls::Synthesis s = hls::synthesize(g, opts);

  // Every op scheduled in range and every dependence respected.
  hls::validate_schedule(g, s.schedule, opts.resources);
  hls::validate_binding(g, s.schedule, s.binding);
  s.rtl.datapath.validate();

  // The datapath's primary I/O matches the behavior.
  EXPECT_EQ(s.rtl.datapath.primary_inputs.size(), g.inputs().size());
  EXPECT_EQ(s.rtl.datapath.primary_outputs.size(), g.outputs().size());
  // The controller has one vector per control step.
  EXPECT_EQ(s.rtl.controller.num_vectors(), s.schedule.num_steps);
}

TEST_P(FlowSweep, ScanSelectionBreaksAllLoops) {
  const cdfg::Cdfg g = make_random(GetParam(), 30, 3);
  for (const auto& select :
       {testability::select_scan_vars_mfvs,
        testability::select_scan_vars_loopcut,
        testability::select_scan_vars_boundary,
        testability::select_scan_vars_interior}) {
    const auto vars = select(g);
    EXPECT_TRUE(cdfg::breaks_all_cdfg_loops(g, vars));
  }
}

TEST_P(FlowSweep, LoopAvoidanceIsValidAndDeterministic) {
  // Quality is heuristic (see EXP-LOOPAVOID for the comparative study);
  // what must always hold is validity, deadline compliance, determinism,
  // and that committed scan variables still break every CDFG loop.
  const cdfg::Cdfg g = make_random(GetParam(), 20, 2);
  const hls::Resources res{{cdfg::FuType::kAlu, 2},
                           {cdfg::FuType::kMultiplier, 1}};
  const int deadline = hls::list_schedule(g, res).num_steps + 1;

  testability::LoopAvoidOptions lopts;
  lopts.resources = res;
  lopts.num_steps = deadline;
  lopts.scan_vars = testability::select_scan_vars_loopcut(g);
  const testability::LoopAvoidResult a =
      testability::loop_avoiding_synthesis(g, lopts);
  const testability::LoopAvoidResult b =
      testability::loop_avoiding_synthesis(g, lopts);

  hls::validate_schedule(g, a.schedule, res);
  hls::validate_binding(g, a.schedule, a.binding);
  EXPECT_EQ(a.schedule.num_steps, deadline);
  EXPECT_EQ(a.schedule.step_of_op, b.schedule.step_of_op);
  EXPECT_EQ(a.binding.reg_of_lifetime, b.binding.reg_of_lifetime);
  EXPECT_TRUE(cdfg::breaks_all_cdfg_loops(g, lopts.scan_vars));
  EXPECT_NO_THROW(hls::build_rtl(g, a.schedule, a.binding));
}

TEST_P(FlowSweep, LifetimesCoverEveryStoredVariable) {
  const cdfg::Cdfg g = make_random(GetParam());
  const hls::Schedule s = hls::asap_schedule(g);
  const cdfg::LifetimeAnalysis lts =
      cdfg::analyze_lifetimes(g, s.step_of_op, s.num_steps);
  for (const cdfg::Variable& v : g.vars()) {
    if (v.kind == cdfg::VarKind::kConstant) continue;
    const int lt = lts.lifetime_of_var[v.id];
    ASSERT_GE(lt, 0) << v.name;
    // The interval is within range.
    EXPECT_GE(lts.lifetimes[lt].interval.birth, 0);
    EXPECT_LE(lts.lifetimes[lt].interval.death, lts.num_slots);
  }
}

TEST_P(FlowSweep, TfbBindingValid) {
  const cdfg::Cdfg g = make_random(GetParam(), 18, 2);
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 1}});
  const bist::TfbResult r = bist::tfb_synthesis(g, s);
  EXPECT_NO_THROW(hls::validate_binding(g, s, r.binding));
  const hls::RtlDesign rtl = hls::build_rtl(g, s, r.binding);
  EXPECT_LE(bist::analyze_adjacency(rtl.datapath).self_adjacent_count(),
            r.inherent_self_adjacent);
}

TEST_P(FlowSweep, SharingAuditConsistent) {
  const cdfg::Cdfg g = make_random(GetParam(), 18, 2);
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 1}});
  hls::Binding b = hls::make_binding(g, s);
  const bist::ShareResult r = bist::sharing_register_assignment(g, b);
  EXPECT_NO_THROW(hls::rebind_registers(g, b, r.reg_of_lifetime));
  // Roles audited on the installed map agree with the result.
  const bist::BistRoles roles = bist::audit_roles(g, b);
  EXPECT_EQ(roles.test_registers(), r.roles.test_registers());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSweep, ::testing::Range(1, 13));

class GateSweep : public ::testing::TestWithParam<int> {};

// Random combinational netlist builder.
gl::Netlist random_netlist(std::uint64_t seed, int gates = 60) {
  util::Rng rng(seed);
  gl::Netlist n;
  std::vector<int> nodes;
  for (int i = 0; i < 6; ++i)
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  for (int i = 0; i < gates; ++i) {
    static constexpr gl::GateType kTypes[] = {
        gl::GateType::kAnd,  gl::GateType::kOr,  gl::GateType::kNand,
        gl::GateType::kNor,  gl::GateType::kXor, gl::GateType::kXnor,
        gl::GateType::kNot,  gl::GateType::kMux};
    const gl::GateType t = kTypes[rng.pick_index(8)];
    const int arity = t == gl::GateType::kNot   ? 1
                      : t == gl::GateType::kMux ? 3
                                                : 2;
    std::vector<int> fanins;
    for (int a = 0; a < arity; ++a)
      fanins.push_back(nodes[rng.pick_index(nodes.size())]);
    nodes.push_back(n.add_gate(t, fanins));
  }
  for (int i = 0; i < 4; ++i)
    n.mark_output(nodes[nodes.size() - 1 - i]);
  n.validate();
  return n;
}

TEST_P(GateSweep, FaultSimAgreesWithSequentialSim) {
  // The event-driven combinational fault simulator and the brute-force
  // full-resimulation must agree on every fault.
  const gl::Netlist n = random_netlist(GetParam());
  const auto faults = gl::enumerate_faults(n);
  const auto blocks = gl::lfsr_pattern_blocks(
      static_cast<int>(n.primary_inputs().size()), 1, GetParam());

  gl::FaultSimulator sim(n);
  std::vector<bool> fast(faults.size(), false);
  sim.run_block(blocks[0], faults, fast);

  std::vector<std::vector<gl::Bits>> frames;
  frames.push_back(blocks[0]);
  const std::vector<bool> slow = gl::sequential_fault_sim(n, frames, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(fast[i], slow[i]) << gl::describe(n, faults[i]);
}

TEST_P(GateSweep, PodemTestsVerifiedByFaultSim) {
  const gl::Netlist n = random_netlist(GetParam(), 40);
  const auto faults = gl::enumerate_faults(n);
  gl::Podem podem(n);
  gl::FaultSimulator sim(n);
  int checked = 0;
  for (std::size_t i = 0; i < faults.size() && checked < 20; i += 5) {
    const gl::AtpgResult r = podem.generate(faults[i]);
    if (r.status != gl::AtpgStatus::kDetected) continue;
    ++checked;
    std::vector<gl::Bits> block(n.primary_inputs().size());
    for (std::size_t p = 0; p < block.size(); ++p)
      block[p] = r.pi_values[p] == gl::V::k1 ? gl::Bits::all1()
                                             : gl::Bits::all0();
    std::vector<bool> det;
    std::vector<gl::Fault> one{faults[i]};
    sim.run_block(block, one, det);
    EXPECT_TRUE(det[0]) << gl::describe(n, faults[i]);
  }
}

TEST_P(GateSweep, ScoapBoundsAreSane) {
  const gl::Netlist n = random_netlist(GetParam());
  const gl::Scoap s = gl::compute_scoap(n);
  for (int pi : n.primary_inputs()) {
    EXPECT_EQ(s.cc0[pi], 1);
    EXPECT_EQ(s.cc1[pi], 1);
  }
  for (int po : n.primary_outputs()) EXPECT_EQ(s.co[po], 0);
  // Controllability grows along paths: every gate costs at least 1 more
  // than its cheapest fanin on the corresponding value.
  for (int id = 0; id < n.num_nodes(); ++id) {
    const auto& node = n.node(id);
    if (node.fanins.empty()) continue;
    int cheapest = INT_MAX;
    for (int f : node.fanins)
      cheapest = std::min({cheapest, s.cc0[f], s.cc1[f]});
    EXPECT_GE(std::min(s.cc0[id], s.cc1[id]), cheapest);
  }
}

TEST_P(GateSweep, InterpreterMatchesGateLevelOnRandomBehaviors) {
  // Behavioral interpreter vs full-scan gate expansion on one iteration:
  // drive the expanded netlist's register inputs per the schedule is
  // covered by the e2e suite; here we check the pure combinational FU
  // construction against 64 random operand lanes for every op kind.
  util::Rng rng(GetParam() * 31 + 7);
  for (const cdfg::OpKind kind :
       {cdfg::OpKind::kAdd, cdfg::OpKind::kSub, cdfg::OpKind::kMul,
        cdfg::OpKind::kAnd, cdfg::OpKind::kOr, cdfg::OpKind::kXor,
        cdfg::OpKind::kLt, cdfg::OpKind::kEq}) {
    cdfg::Cdfg g;
    const auto a = g.add_input("a", 6);
    const auto b = g.add_input("b", 6);
    const auto y = g.add_op(kind, "y", {a, b});
    g.mark_output(y);

    gl::Netlist n;
    const gl::Word wa = gl::make_input_word(n, "a", 6);
    const gl::Word wb = gl::make_input_word(n, "b", 6);
    const gl::Word wy = gl::build_op_result(
        n, kind, wa, wb, gl::make_const_word(n, 0, 6));
    for (int bit : wy) n.mark_output(bit);

    const std::uint64_t va = rng.next_u64() & 0x3F;
    const std::uint64_t vb = rng.next_u64() & 0x3F;
    std::map<cdfg::VarId, std::uint64_t> state;
    const auto vals = cdfg::execute_iteration(g, {{a, va}, {b, vb}}, state);

    std::vector<gl::Bits> values(n.num_nodes(), gl::Bits::unknown());
    for (int i = 0; i < 6; ++i) {
      values[wa[i]] = ((va >> i) & 1) ? gl::Bits::all1() : gl::Bits::all0();
      values[wb[i]] = ((vb >> i) & 1) ? gl::Bits::all1() : gl::Bits::all0();
    }
    gl::simulate_frame(n, values);
    std::uint64_t got = 0;
    for (int i = 0; i < 6; ++i)
      if (values[wy[i]].v & 1) got |= 1ULL << i;
    EXPECT_EQ(got, vals[y]) << cdfg::to_string(kind) << " " << va << ","
                            << vb;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace tsyn
