// Campaign orchestrator tests: manifest validation, stable hashing, the
// miss-coalescing stage cache, and the sweep's durability/determinism
// contracts (journal resume, byte-identical reruns, failed-job isolation).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "campaign/cache.h"
#include "campaign/manifest.h"
#include "campaign/sweep.h"
#include "observe/bench_diff.h"
#include "observe/history.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace tsyn::campaign {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Fresh scratch dir per test under the gtest temp root.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("campaign_" + name);
  fs::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// util::Fnv1a
// ---------------------------------------------------------------------------

TEST(Fnv1a, MatchesReferenceVectors) {
  // Standard FNV-1a 64-bit vectors.
  EXPECT_EQ(util::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(util::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, LengthFramingSeparatesAdjacentStrings) {
  const auto ab_c = util::Fnv1a().str("ab").str("c").value();
  const auto a_bc = util::Fnv1a().str("a").str("bc").value();
  EXPECT_NE(ab_c, a_bc);
}

TEST(Fnv1a, HexIsSixteenLowercaseDigits) {
  const std::string h = util::Fnv1a().str("x").hex();
  EXPECT_EQ(h.size(), 16u);
  for (char c : h)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << h;
  EXPECT_EQ(util::Fnv1a::hash_hex(0), "0000000000000000");
  EXPECT_EQ(util::Fnv1a::hash_hex(0xdeadbeefull), "00000000deadbeef");
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

Manifest tiny_manifest() {
  return parse_manifest(R"({
    "schema": 1,
    "designs": ["bench:fig1"],
    "configs": [{"name": "a1m1", "alu": 1, "mul": 1}],
    "scan": ["full"],
    "widths": [2],
    "seeds": [7]
  })");
}

TEST(Manifest, ParsesWithDefaults) {
  const Manifest m = parse_manifest(R"({
    "schema": 1,
    "designs": ["bench:fig1", "bench:tseng"],
    "configs": [{"name": "small", "alu": 1, "mul": 1},
                {"name": "big"}]
  })");
  EXPECT_EQ(m.designs.size(), 2u);
  EXPECT_EQ(m.configs[1].alu, 2);  // default allocation
  EXPECT_EQ(m.scans, std::vector<std::string>{"full"});
  EXPECT_EQ(m.widths, std::vector<int>{4});
  EXPECT_EQ(m.seeds, std::vector<std::uint64_t>{0xF111});
  EXPECT_EQ(m.compact, "static");
  EXPECT_EQ(m.xfill, "random");
}

TEST(Manifest, RejectsStructuralErrors) {
  EXPECT_THROW(parse_manifest("[]"), ManifestError);
  EXPECT_THROW(parse_manifest(R"({"designs": ["bench:fig1"]})"),
               ManifestError);  // missing schema
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 2, "designs": ["bench:fig1"],
                       "configs": [{"name": "a"}]})"),
               ManifestError);  // wrong schema
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": [], "configs": [{"name":"a"}]})"),
               ManifestError);  // empty designs
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1"],
                       "configs": [{"name": "a", "alu": 2.5}]})"),
               ManifestError);  // non-integer count
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1"],
                       "configs": [{"name": "a"}, {"name": "a"}]})"),
               ManifestError);  // duplicate config name
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1", "fig1.cdfg"],
                       "configs": [{"name": "a"}]})"),
               ManifestError);  // colliding design stems
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1"],
                       "configs": [{"name": "a"}], "scan": ["sideways"]})"),
               ManifestError);  // unknown scan policy
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1"],
                       "configs": [{"name": "a"}], "widths": [0]})"),
               ManifestError);  // width out of range
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "designs": ["bench:fig1"],
                       "configs": [{"name": "a"}], "surprise": true})"),
               ManifestError);  // unknown member
}

TEST(Manifest, DesignStems) {
  EXPECT_EQ(design_stem("bench:diffeq"), "diffeq");
  EXPECT_EQ(design_stem("path/to/my design.cdfg"), "my_design");
  // Dots map to '_': job ids are dot-separated, a dotted stem would break
  // their grammar.
  EXPECT_EQ(design_stem("loop.v2.cdfg"), "loop_v2");
  EXPECT_EQ(design_stem(""), "design");
}

TEST(Manifest, GridIsSortedCrossProduct) {
  Manifest m = tiny_manifest();
  m.designs = {"bench:fig1", "bench:tseng"};
  m.scans = {"full", "none"};
  m.seeds = {7, 8, 9};
  const std::vector<JobSpec> grid = expand_grid(m);
  EXPECT_EQ(grid.size(), 2u * 1u * 2u * 1u * 3u);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_LT(grid[i - 1].id, grid[i].id);
  EXPECT_EQ(grid.front().id, "fig1.a1m1.full.w2.s7");
}

TEST(Manifest, ContentHashCoversEveryAxisAndKnob) {
  const Manifest base = tiny_manifest();
  const std::string h0 = base.content_hash();
  EXPECT_EQ(h0, base.content_hash());  // stable
  Manifest m = base;
  m.seeds.push_back(9);
  EXPECT_NE(m.content_hash(), h0);
  m = base;
  m.xfill = "adjacent";
  EXPECT_NE(m.content_hash(), h0);
  m = base;
  m.seq_fault_cap = 10;
  EXPECT_NE(m.content_hash(), h0);
  m = base;
  m.configs[0].mul = 3;
  EXPECT_NE(m.content_hash(), h0);
}

// ---------------------------------------------------------------------------
// MemoTable / StageCache
// ---------------------------------------------------------------------------

TEST(StageCache, CoalescesConcurrentMisses) {
  StageCache cache;
  std::atomic<int> computed{0};
  util::ThreadPool::shared().run(32, 8, [&](int, int) {
    auto v = cache.parse.get_or_compute(42, [&] {
      ++computed;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return std::make_shared<const cdfg::Cdfg>("x");
    });
    EXPECT_EQ(v->name(), "x");
  });
  EXPECT_EQ(computed.load(), 1);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.parse_misses, 1);
  EXPECT_EQ(s.parse_hits, 31);
}

TEST(StageCache, ExceptionPoisonsTheEntry) {
  StageCache cache;
  int calls = 0;
  auto boom = [&]() -> std::shared_ptr<const cdfg::Cdfg> {
    ++calls;
    throw std::runtime_error("unparsable");
  };
  EXPECT_THROW(cache.parse.get_or_compute(7, boom), std::runtime_error);
  EXPECT_THROW(cache.parse.get_or_compute(7, boom), std::runtime_error);
  EXPECT_EQ(calls, 1);  // deterministic failure: never recomputed
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

/// 100 jobs sharing 4 (design, config) prefixes — the ISSUE's cache-economy
/// grid, scaled to the ≤20-misses bound with room to spare.
Manifest economy_manifest() {
  Manifest m = parse_manifest(R"({
    "schema": 1,
    "designs": ["bench:fig1", "bench:tseng"],
    "configs": [{"name": "a1m1", "alu": 1, "mul": 1},
                {"name": "a2m2", "alu": 2, "mul": 2}],
    "scan": ["full"],
    "widths": [2]
  })");
  m.seeds.clear();
  for (std::uint64_t s = 0; s < 25; ++s) m.seeds.push_back(s);
  return m;
}

TEST(Sweep, StageCacheBoundsWorkByGridStructure) {
  const Manifest m = economy_manifest();
  SweepOptions opts;
  opts.results_dir = scratch("economy").string();
  const SweepSummary s = run_sweep(m, opts);
  ASSERT_GE(s.total(), 100);
  EXPECT_EQ(s.failed, 0);
  // The acceptance bound: at most 20 parses / 20 lowers on a >= 100 job
  // grid with <= 20 shared prefixes. Structurally we expect exactly
  // 2 / 4 / 4 (designs / design x config / ... x scan x width).
  EXPECT_LE(s.cache.parse_misses, 20);
  EXPECT_LE(s.cache.expand_misses, 20);
  EXPECT_EQ(s.cache.parse_misses, 2);
  EXPECT_EQ(s.cache.synth_misses, 4);
  EXPECT_EQ(s.cache.expand_misses, 4);
  // Every other stage lookup was a hit; per-job ATPG still ran 100 times.
  EXPECT_EQ(s.cache.parse_hits + s.cache.parse_misses, s.total());
  for (const JobResult& r : s.jobs) {
    EXPECT_EQ(r.status, "ok") << r.spec.id << ": " << r.error;
    EXPECT_GT(r.coverage, 0.9) << r.spec.id;
  }
}

TEST(Sweep, ResumedRerunIsAllJournalHitsAndByteIdentical) {
  Manifest m = economy_manifest();
  m.seeds.resize(3);  // 12 jobs is plenty for identity checking
  const fs::path dir = scratch("rerun");
  SweepOptions opts;
  opts.results_dir = dir.string();
  const SweepSummary first = run_sweep(m, opts);
  ASSERT_EQ(first.failed, 0);
  ASSERT_TRUE(first.complete);

  std::map<std::string, std::string> bytes;
  for (const auto& e : fs::directory_iterator(dir))
    bytes[e.path().filename().string()] = slurp(e.path());

  opts.resume = true;
  const SweepSummary second = run_sweep(m, opts);
  EXPECT_EQ(second.ran, 0);
  EXPECT_EQ(second.journal_hits, second.total());
  EXPECT_EQ(second.cache.misses(), 0);  // nothing was even looked up

  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name == "sweep_stats.json") continue;  // run-varying by design
    EXPECT_EQ(slurp(e.path()), bytes[name]) << name << " changed on rerun";
  }
}

TEST(Sweep, KillAndResumeReproducesTheUninterruptedIndex) {
  Manifest m = economy_manifest();
  m.seeds.resize(4);  // 16 jobs
  const fs::path uncut = scratch("uncut");
  SweepOptions opts;
  opts.results_dir = uncut.string();
  const SweepSummary full = run_sweep(m, opts);
  ASSERT_TRUE(full.complete);

  // Partial run: stop after 5 jobs, then simulate a kill mid-write by
  // tearing the journal's trailing bytes.
  const fs::path cut = scratch("cut");
  SweepOptions part;
  part.results_dir = cut.string();
  part.max_jobs = 5;
  const SweepSummary partial = run_sweep(m, part);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.ran, 5);
  EXPECT_FALSE(fs::exists(cut / "index.json"));
  {
    std::string j = slurp(cut / "journal.jsonl");
    ASSERT_GT(j.size(), 30u);
    std::ofstream out(cut / "journal.jsonl", std::ios::binary);
    out << j.substr(0, j.size() - 17);  // torn final record
  }

  SweepOptions resume;
  resume.results_dir = cut.string();
  resume.resume = true;
  const SweepSummary resumed = run_sweep(m, resume);
  EXPECT_TRUE(resumed.complete);
  // 4 intact journal records survive the tear; the torn one re-runs.
  EXPECT_EQ(resumed.journal_hits, 4);
  EXPECT_EQ(resumed.ran, 12);
  EXPECT_EQ(strip_timing(slurp(cut / "index.json")),
            strip_timing(slurp(uncut / "index.json")));
  // Per-job reports are timestamp-free, so they are fully identical.
  for (const JobResult& r : full.jobs)
    EXPECT_EQ(slurp(cut / (r.spec.id + ".json")),
              slurp(uncut / (r.spec.id + ".json")))
        << r.spec.id;
}

TEST(Sweep, FailedJobIsIsolatedAndJournaled) {
  Manifest m = parse_manifest(R"({
    "schema": 1,
    "designs": ["bench:fig1", "/nonexistent/broken.cdfg"],
    "configs": [{"name": "a1m1", "alu": 1, "mul": 1}],
    "scan": ["full"],
    "widths": [2],
    "seeds": [7]
  })");
  const fs::path dir = scratch("failiso");
  SweepOptions opts;
  opts.results_dir = dir.string();
  const SweepSummary s = run_sweep(m, opts);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.failed, 1);
  ASSERT_EQ(s.jobs.size(), 2u);
  const JobResult& bad = s.jobs[0];  // "broken" sorts before "fig1"
  EXPECT_EQ(bad.status, "failed");
  EXPECT_NE(bad.error.find("cannot open"), std::string::npos) << bad.error;
  EXPECT_EQ(s.jobs[1].status, "ok");
  // The failure is a first-class artifact: report written, index row kept.
  EXPECT_TRUE(fs::exists(dir / (bad.spec.id + ".json")));
  const std::string index = slurp(dir / "index.json");
  EXPECT_NE(index.find("\"status\": \"failed\""), std::string::npos);

  // A failed job is deterministic, so a resume does NOT retry it.
  opts.resume = true;
  const SweepSummary again = run_sweep(m, opts);
  EXPECT_EQ(again.ran, 0);
  EXPECT_EQ(again.journal_hits, 2);
}

TEST(Sweep, SequentialJobsRunUnderTheSeqBudgets) {
  Manifest m = tiny_manifest();
  m.scans = {"none"};  // unscanned state -> time-frame-expansion ATPG
  m.seq_fault_cap = 8;
  m.seq_max_frames = 3;
  m.seq_backtrack_limit = 50;
  StageCache cache;
  std::string report;
  const JobResult r = run_one_job(expand_grid(m)[0], m, cache, &report);
  EXPECT_EQ(r.status, "ok") << r.error;
  EXPECT_EQ(r.faults, 8);  // the cap bounded the target list
  EXPECT_EQ(r.patterns, 0);  // sequential jobs report coverage only
  EXPECT_NE(report.find("\"compact\": \"seq-tfe\""), std::string::npos);
}

TEST(Sweep, RefusesClobberAndForeignJournals) {
  Manifest m = tiny_manifest();
  const fs::path dir = scratch("guard");
  SweepOptions opts;
  opts.results_dir = dir.string();
  run_sweep(m, opts);
  // Same dir without --resume: refused.
  EXPECT_THROW(run_sweep(m, opts), SweepError);
  // Resume under a different manifest: refused.
  Manifest other = m;
  other.seeds = {12345};
  SweepOptions resume = opts;
  resume.resume = true;
  EXPECT_THROW(run_sweep(other, resume), SweepError);
  // Resume with no journal at all: refused.
  SweepOptions fresh;
  fresh.results_dir = scratch("guard_empty").string();
  fresh.resume = true;
  EXPECT_THROW(run_sweep(m, fresh), SweepError);
}

TEST(Sweep, TimelineReconcilesWithTheJournal) {
  Manifest m = economy_manifest();
  m.seeds.resize(3);  // 12 jobs
  const fs::path dir = scratch("timeline");
  SweepOptions opts;
  opts.results_dir = dir.string();
  opts.timeline_path = (dir / "timeline.json").string();
  opts.threads = 2;
  const SweepSummary s = run_sweep(m, opts);
  ASSERT_TRUE(s.complete);
  ASSERT_EQ(s.failed, 0);

  const util::Json doc = util::Json::parse(slurp(dir / "timeline.json"));
  const util::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Every executed job has exactly one "job" span; each stage sub-span
  // nests inside its job's [t0, t1] on the same track and carries a cache
  // annotation; tracks never exceed the requested thread count.
  std::map<std::string, const util::Json*> job_spans;
  std::int64_t stage_spans = 0;
  for (const util::Json& ev : events->arr) {
    const util::Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str != "X") continue;
    const util::Json* cat = ev.find("cat");
    ASSERT_NE(cat, nullptr);
    const int tid = static_cast<int>(ev.find("tid")->number);
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, 2);
    if (cat->str == "job") {
      const std::string& id = ev.find("name")->str;
      EXPECT_TRUE(job_spans.emplace(id, &ev).second)
          << "duplicate job span " << id;
      EXPECT_EQ(ev.find("args")->find("status")->str, "ok");
    } else {
      ASSERT_EQ(cat->str, "stage");
      ++stage_spans;
      const std::string& stage = ev.find("name")->str;
      EXPECT_TRUE(stage == "parse" || stage == "synth" ||
                  stage == "expand" || stage == "atpg")
          << stage;
      const std::string& cache = ev.find("args")->find("cache")->str;
      if (stage == "atpg")
        EXPECT_EQ(cache, "none");
      else
        EXPECT_TRUE(cache == "hit" || cache == "miss" || cache == "coalesced")
            << stage << ": " << cache;
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(job_spans.size()), s.ran);
  EXPECT_EQ(stage_spans, s.ran * 4);  // parse, synth, expand, atpg per job
  for (const JobResult& r : s.jobs) {
    if (r.from_journal) continue;
    EXPECT_TRUE(job_spans.count(r.spec.id)) << r.spec.id;
  }

  // Stage spans fit inside their job span (matched by track + overlap).
  for (const util::Json& ev : events->arr) {
    const util::Json* cat = ev.find("cat");
    if (!cat || cat->str != "stage") continue;
    const double ts = ev.find("ts")->number;
    const double dur = ev.find("dur")->number;
    const int tid = static_cast<int>(ev.find("tid")->number);
    bool contained = false;
    for (const auto& [id, job] : job_spans) {
      if (static_cast<int>(job->find("tid")->number) != tid) continue;
      const double jts = job->find("ts")->number;
      const double jdur = job->find("dur")->number;
      // One-decimal µs rounding can push a boundary by 0.1.
      if (ts >= jts - 0.1 && ts + dur <= jts + jdur + 0.2) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << ev.find("name")->str << " span at ts=" << ts;
  }
}

TEST(Sweep, HistoryIngestReproducesSweepNumbersExactly) {
  Manifest m = economy_manifest();
  m.seeds.resize(2);  // 8 jobs
  const fs::path dir = scratch("hist");
  const fs::path store = dir / "history";
  SweepOptions opts;
  opts.results_dir = (dir / "run1").string();
  opts.history_dir = store.string();
  const SweepSummary s = run_sweep(m, opts);
  ASSERT_TRUE(s.complete);
  EXPECT_TRUE(s.history_added);
  EXPECT_EQ(s.history_runs_total, 1);
  ASSERT_FALSE(s.history_run_id.empty());

  // The store reproduces the sweep's numbers exactly (%.17g round-trip).
  const observe::History h = observe::history_load(store.string());
  ASSERT_EQ(h.runs.size(), 1u);
  const observe::HistoryRun& run = h.runs[0];
  EXPECT_EQ(run.run_id, s.history_run_id);
  EXPECT_EQ(run.manifest, s.manifest_hash);
  ASSERT_EQ(run.entries.size(), s.jobs.size());
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    const JobResult& r = s.jobs[i];
    const observe::HistoryEntry& e = run.entries[i];
    EXPECT_EQ(e.job, r.spec.id);
    EXPECT_EQ(e.coverage, r.coverage) << e.job;
    EXPECT_EQ(e.efficiency, r.efficiency) << e.job;
    EXPECT_EQ(e.patterns, r.patterns) << e.job;
    EXPECT_EQ(e.wall_ms, r.wall_ms) << e.job;
  }

  // sweep_stats.json carries the history block.
  const std::string stats = slurp(dir / "run1" / "sweep_stats.json");
  EXPECT_NE(stats.find("\"history\""), std::string::npos);
  EXPECT_NE(stats.find(s.history_run_id), std::string::npos);

  // A second execution of the same grid is a distinct run (timings
  // differ), and the deterministic metrics diff clean across the two.
  SweepOptions again = opts;
  again.results_dir = (dir / "run2").string();
  const SweepSummary s2 = run_sweep(m, again);
  ASSERT_TRUE(s2.complete);
  EXPECT_TRUE(s2.history_added);
  EXPECT_EQ(s2.history_runs_total, 2);
  EXPECT_NE(s2.history_run_id, s.history_run_id);

  const observe::History h2 = observe::history_load(store.string());
  std::string err;
  const observe::HistoryRun* a = observe::history_resolve(h2, "prev", &err);
  const observe::HistoryRun* b = observe::history_resolve(h2, "latest", &err);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  observe::BenchDiffOptions dopts;
  dopts.check_time = false;
  const observe::BenchDiffResult diff = observe::diff_bench_json(
      util::Json::parse(observe::history_run_to_bench_json(*a)),
      util::Json::parse(observe::history_run_to_bench_json(*b)), dopts);
  EXPECT_TRUE(diff.ok()) << observe::diff_result_to_text(diff, false, "");
}

TEST(Sweep, FailedJournalRecordCarriesDiagnostics) {
  Manifest m = parse_manifest(R"({
    "schema": 1,
    "designs": ["/nonexistent/broken.cdfg"],
    "configs": [{"name": "a1m1", "alu": 1, "mul": 1}],
    "scan": ["full"],
    "widths": [2],
    "seeds": [7]
  })");
  const fs::path dir = scratch("faildiag");
  SweepOptions opts;
  opts.results_dir = dir.string();
  const SweepSummary s = run_sweep(m, opts);
  EXPECT_EQ(s.failed, 1);
  const std::string journal = slurp(dir / "journal.jsonl");
  // The failure record embeds a metrics snapshot and the last heartbeat
  // line, so a dead job's context survives in the journal.
  EXPECT_NE(journal.find("\"diag\""), std::string::npos) << journal;
  EXPECT_NE(journal.find("\"counters\""), std::string::npos);
  EXPECT_NE(journal.find("\"heartbeat\""), std::string::npos);
  // Successful runs stay diag-free (the happy path pays nothing).
  const fs::path ok_dir = scratch("okdiag");
  SweepOptions ok;
  ok.results_dir = ok_dir.string();
  run_sweep(tiny_manifest(), ok);
  EXPECT_EQ(slurp(ok_dir / "journal.jsonl").find("\"diag\""),
            std::string::npos);
}

TEST(StageCache, GetOrComputeReportsOutcome) {
  StageCache cache;
  const char* outcome = nullptr;
  auto make = [] { return std::make_shared<const cdfg::Cdfg>(); };
  cache.parse.get_or_compute(42, make, &outcome);
  EXPECT_STREQ(outcome, "miss");
  cache.parse.get_or_compute(42, make, &outcome);
  EXPECT_STREQ(outcome, "hit");
  EXPECT_EQ(cache.stats().parse_hits, 1);
}

TEST(Sweep, StripTimingZeroesOnlyWallMs) {
  const std::string in =
      "{\"wall_ms\": 12.5, \"coverage\": 0.97,\n \"wall_ms\": 3e-05}";
  EXPECT_EQ(strip_timing(in),
            "{\"wall_ms\": 0, \"coverage\": 0.97,\n \"wall_ms\": 0}");
}

}  // namespace
}  // namespace tsyn::campaign
