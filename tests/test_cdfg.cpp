#include <gtest/gtest.h>

#include <algorithm>

#include "cdfg/benchmarks.h"
#include "cdfg/generator.h"
#include "cdfg/interp.h"
#include "cdfg/lifetime.h"
#include "cdfg/loops.h"
#include "cdfg/parser.h"
#include "hls/schedule.h"
#include "util/thread_pool.h"

namespace tsyn::cdfg {
namespace {

TEST(Ir, BuildSmallGraph) {
  Cdfg g("t");
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b});
  g.mark_output(c);
  g.validate();
  EXPECT_EQ(g.num_ops(), 1);
  EXPECT_EQ(g.num_vars(), 3);
  EXPECT_EQ(g.var(c).def_op, 0);
  EXPECT_EQ(g.var(a).uses.size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(Ir, DuplicateNameRejected) {
  Cdfg g;
  g.add_input("x");
  EXPECT_THROW(g.add_input("x"), CdfgError);
}

TEST(Ir, ArityChecked) {
  Cdfg g;
  const VarId a = g.add_input("a");
  EXPECT_THROW(g.add_op(OpKind::kAdd, "y", {a}), CdfgError);
  EXPECT_NO_THROW(g.add_op(OpKind::kNot, "z", {a}));
}

TEST(Ir, StateNeedsUpdate) {
  Cdfg g;
  g.add_state("s");
  EXPECT_THROW(g.validate(), CdfgError);
}

TEST(Ir, StateUpdateMustBeTemp) {
  Cdfg g;
  const VarId s = g.add_state("s");
  const VarId x = g.add_input("x");
  EXPECT_THROW(g.set_state_update(s, x), CdfgError);
}

TEST(Ir, ReplaceOpInputKeepsUseLists) {
  Cdfg g;
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b});
  const VarId d = g.add_op(OpKind::kAdd, "d", {c, b});
  (void)d;
  // Redirect op d's first input from c to a.
  g.replace_op_input(1, 0, a);
  EXPECT_TRUE(g.var(c).uses.empty());
  EXPECT_EQ(std::count(g.var(a).uses.begin(), g.var(a).uses.end(), 1), 1);
  g.validate();
}

TEST(Ir, DependenceGraphLoopEdges) {
  const Cdfg g = diffeq();
  const graph::Digraph fwd = g.op_dependence_graph(false);
  const graph::Digraph loop = g.op_dependence_graph(true);
  EXPECT_GT(loop.num_edges(), fwd.num_edges());
}

TEST(Ir, FuTypeMapping) {
  EXPECT_EQ(fu_type_of(OpKind::kAdd), FuType::kAlu);
  EXPECT_EQ(fu_type_of(OpKind::kLt), FuType::kAlu);
  EXPECT_EQ(fu_type_of(OpKind::kMul), FuType::kMultiplier);
  EXPECT_EQ(fu_type_of(OpKind::kCopy), FuType::kCopyUnit);
}

TEST(Benchmarks, AllValidate) {
  for (const Cdfg& g : standard_benchmarks()) {
    EXPECT_NO_THROW(g.validate()) << g.name();
    EXPECT_GT(g.num_ops(), 0) << g.name();
    EXPECT_FALSE(g.outputs().empty()) << g.name();
  }
}

TEST(Benchmarks, DiffeqShape) {
  const Cdfg g = diffeq();
  int muls = 0;
  int alus = 0;
  for (const Operation& op : g.ops()) {
    if (op.kind == OpKind::kMul) ++muls;
    if (fu_type_of(op.kind) == FuType::kAlu) ++alus;
  }
  EXPECT_EQ(muls, 6);
  EXPECT_EQ(alus, 5);  // 2 add, 2 sub, 1 compare
  EXPECT_EQ(g.states().size(), 3u);
}

TEST(Benchmarks, EwfShape) {
  const Cdfg g = ewf();
  int muls = 0;
  int addsub = 0;
  for (const Operation& op : g.ops()) {
    if (op.kind == OpKind::kMul) ++muls;
    if (op.kind == OpKind::kAdd || op.kind == OpKind::kSub) ++addsub;
  }
  EXPECT_EQ(muls, 8);
  EXPECT_EQ(addsub, 25);
  EXPECT_EQ(g.states().size(), 8u);
}

TEST(Benchmarks, Fig1IsLoopFree) {
  EXPECT_TRUE(cdfg_loops(fig1_example()).empty());
  EXPECT_TRUE(cdfg_loops(dct4()).empty());
  EXPECT_TRUE(cdfg_loops(tseng()).empty());
  // FIR's delay line is a feed-forward shift pipeline: states, no loops.
  EXPECT_TRUE(cdfg_loops(fir(4)).empty());
}

TEST(Benchmarks, FeedbackFiltersHaveLoops) {
  EXPECT_FALSE(cdfg_loops(diffeq()).empty());
  EXPECT_FALSE(cdfg_loops(iir_biquad()).empty());
  EXPECT_FALSE(cdfg_loops(ewf()).empty());
  EXPECT_FALSE(cdfg_loops(ar_lattice(3)).empty());
}

TEST(Benchmarks, FirTapScaling) {
  EXPECT_EQ(fir(4).states().size(), 3u);
  EXPECT_EQ(fir(8).states().size(), 7u);
}

TEST(Loops, BreakingAllStatesBreaksEverything) {
  for (const Cdfg& g : standard_benchmarks()) {
    EXPECT_TRUE(breaks_all_cdfg_loops(g, g.states())) << g.name();
  }
}

TEST(Loops, EmptySelectionFailsWhenLoopsExist) {
  EXPECT_FALSE(breaks_all_cdfg_loops(diffeq(), {}));
  EXPECT_TRUE(breaks_all_cdfg_loops(dct4(), {}));
}

TEST(Loops, VarGraphEdges) {
  const Cdfg g = diffeq();
  const graph::Digraph d = var_dependence_graph(g);
  const VarId x = g.find_var("x");
  const VarId xl = g.find_var("xl");
  ASSERT_GE(x, 0);
  ASSERT_GE(xl, 0);
  EXPECT_TRUE(d.has_edge(xl, x));  // loop-carried back edge
}

TEST(Parser, RoundTrip) {
  for (const Cdfg& g : standard_benchmarks()) {
    const std::string text = serialize_cdfg(g);
    const Cdfg parsed = parse_cdfg(text);
    EXPECT_EQ(parsed.num_ops(), g.num_ops()) << g.name();
    EXPECT_EQ(parsed.num_vars(), g.num_vars()) << g.name();
    EXPECT_EQ(parsed.states().size(), g.states().size()) << g.name();
    EXPECT_EQ(parsed.outputs().size(), g.outputs().size()) << g.name();
    // Round-trip again: text must be identical (canonical form).
    EXPECT_EQ(serialize_cdfg(parsed), text) << g.name();
  }
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_cdfg("op add y a b"), CdfgError);       // unknown vars
  EXPECT_THROW(parse_cdfg("input x\nop foo y x x"), CdfgError);
  EXPECT_THROW(parse_cdfg("bogus directive"), CdfgError);
  EXPECT_THROW(parse_cdfg("input x\noutput nothere"), CdfgError);
  EXPECT_THROW(parse_cdfg("state s"), CdfgError);  // no update
}

TEST(Parser, CommentsAndBlanks) {
  const Cdfg g = parse_cdfg(
      "# a comment\n"
      "cdfg small\n"
      "\n"
      "input a 8   # trailing comment\n"
      "input b 8\n"
      "op add y a b\n"
      "output y\n");
  EXPECT_EQ(g.name(), "small");
  EXPECT_EQ(g.num_ops(), 1);
  EXPECT_EQ(g.var(g.find_var("a")).width, 8);
}

TEST(Parser, GuardDirective) {
  const Cdfg g = parse_cdfg(
      "input a\ninput c\n"
      "op add y a a\n"
      "guard y c 0\n"
      "output y\n");
  EXPECT_EQ(g.op(0).guard, g.find_var("c"));
  EXPECT_FALSE(g.op(0).guard_polarity);
}

TEST(Lifetime, SimpleChain) {
  // a,b inputs; c = a+b at step 0; d = c+a at step 1; d output.
  Cdfg g;
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b});
  const VarId d = g.add_op(OpKind::kAdd, "d", {c, a});
  g.mark_output(d);
  const LifetimeAnalysis lts = analyze_lifetimes(g, {0, 1}, 2);
  // c alive only at slot 1.
  const auto& c_lt = lts.lifetimes[lts.lifetime_of_var[c]];
  EXPECT_EQ(c_lt.interval.birth, 1);
  EXPECT_EQ(c_lt.interval.death, 2);
  // a alive slots 0..1 (used at step 1).
  const auto& a_lt = lts.lifetimes[lts.lifetime_of_var[a]];
  EXPECT_EQ(a_lt.interval.birth, 0);
  EXPECT_EQ(a_lt.interval.death, 2);
  EXPECT_TRUE(a_lt.is_input);
  // d written at the boundary: occupies slot 0.
  const auto& d_lt = lts.lifetimes[lts.lifetime_of_var[d]];
  EXPECT_EQ(d_lt.interval.birth, 0);
  EXPECT_TRUE(d_lt.is_output);
}

TEST(Lifetime, MergedStateWraps) {
  // State s read at step 0, updated by op at step 1 of a 3-step schedule.
  Cdfg g;
  const VarId x = g.add_input("x");
  const VarId s = g.add_state("s");
  const VarId t = g.add_op(OpKind::kAdd, "t", {s, x});   // step 0
  const VarId u = g.add_op(OpKind::kAdd, "u", {t, x});   // step 1, update
  const VarId y = g.add_op(OpKind::kAdd, "y", {u, x});   // step 2
  g.set_state_update(s, u);
  g.mark_output(y);
  const LifetimeAnalysis lts = analyze_lifetimes(g, {0, 1, 2}, 3);
  const int ls = lts.lifetime_of_var[s];
  const int lu = lts.lifetime_of_var[u];
  EXPECT_EQ(ls, lu);  // merged
  const auto& lt = lts.lifetimes[ls];
  EXPECT_TRUE(lt.is_state);
  EXPECT_TRUE(lt.interval.wraps());
  EXPECT_EQ(lt.interval.birth, 2);
  EXPECT_EQ(lt.interval.death, 1);
}

TEST(Lifetime, SplitStateWhenOldValueOutlivesUpdate) {
  // s read at step 2 but updated at step 0: values coexist -> split.
  Cdfg g;
  const VarId x = g.add_input("x");
  const VarId s = g.add_state("s");
  const VarId u = g.add_op(OpKind::kAdd, "u", {x, x});   // step 0 update
  const VarId y = g.add_op(OpKind::kAdd, "y", {s, x});   // step 2 reads s
  g.set_state_update(s, u);
  g.mark_output(y);
  const LifetimeAnalysis lts = analyze_lifetimes(g, {0, 2}, 3);
  const int ls = lts.lifetime_of_var[s];
  const int lu = lts.lifetime_of_var[u];
  EXPECT_NE(ls, lu);
  EXPECT_EQ(lts.lifetimes[ls].transfer_from, u);
  // Old and new values coexist mid-iteration: the registers must differ.
  EXPECT_TRUE(lts.overlap(ls, lu));
}

TEST(Lifetime, ForcedSplit) {
  Cdfg g;
  const VarId x = g.add_input("x");
  const VarId s = g.add_state("s");
  const VarId t = g.add_op(OpKind::kAdd, "t", {s, x});  // step 0
  const VarId u = g.add_op(OpKind::kAdd, "u", {t, x});  // step 1 update
  g.set_state_update(s, u);
  g.mark_output(u);
  const LifetimeAnalysis merged = analyze_lifetimes(g, {0, 1}, 3, false);
  const LifetimeAnalysis split = analyze_lifetimes(g, {0, 1}, 3, true);
  EXPECT_EQ(merged.lifetime_of_var[s], merged.lifetime_of_var[u]);
  EXPECT_NE(split.lifetime_of_var[s], split.lifetime_of_var[u]);
}

TEST(Lifetime, ConstantsNeedNoStorage) {
  const Cdfg g = diffeq();
  const hls::Schedule s = hls::asap_schedule(g);
  const LifetimeAnalysis lts =
      analyze_lifetimes(g, s.step_of_op, s.num_steps);
  EXPECT_EQ(lts.lifetime_of_var[g.find_var("three")], -1);
}

TEST(Lifetime, EveryNonConstantStored) {
  for (const Cdfg& g : standard_benchmarks()) {
    const hls::Schedule s = hls::asap_schedule(g);
    const LifetimeAnalysis lts =
        analyze_lifetimes(g, s.step_of_op, s.num_steps);
    for (const Variable& v : g.vars()) {
      if (v.kind == VarKind::kConstant) continue;
      EXPECT_GE(lts.lifetime_of_var[v.id], 0)
          << g.name() << " var " << v.name;
    }
  }
}

TEST(Generator, ProducesValidGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorParams p;
    p.num_ops = 25;
    p.num_states = 3;
    p.seed = seed;
    const Cdfg g = random_cdfg(p);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.num_ops(), 25);
    EXPECT_EQ(g.states().size(), 3u);
    EXPECT_FALSE(g.outputs().empty());
  }
}

TEST(Generator, DeterministicPerSeed) {
  GeneratorParams p;
  p.seed = 77;
  EXPECT_EQ(serialize_cdfg(random_cdfg(p)), serialize_cdfg(random_cdfg(p)));
}

TEST(Generator, StatesCreateLoops) {
  GeneratorParams p;
  p.num_ops = 30;
  p.num_states = 2;
  p.seed = 5;
  const Cdfg g = random_cdfg(p);
  EXPECT_FALSE(vars_on_loops(g).empty());
}

TEST(Interp, AddChain) {
  Cdfg g;
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b});
  const VarId d = g.add_op(OpKind::kMul, "d", {c, c});
  g.mark_output(d);
  std::map<VarId, std::uint64_t> state;
  const VarValues vals = execute_iteration(g, {{a, 3}, {b, 4}}, state);
  EXPECT_EQ(vals[c], 7u);
  EXPECT_EQ(vals[d], 49u);
}

TEST(Interp, WidthMasking) {
  Cdfg g;
  const VarId a = g.add_input("a", 8);
  const VarId b = g.add_input("b", 8);
  const VarId c = g.add_op(OpKind::kAdd, "c", {a, b});
  g.mark_output(c);
  std::map<VarId, std::uint64_t> state;
  const VarValues vals = execute_iteration(g, {{a, 200}, {b, 100}}, state);
  EXPECT_EQ(vals[c], (200u + 100u) & 0xFF);
}

TEST(Interp, StateAdvances) {
  // Accumulator: s' = s + x.
  Cdfg g;
  const VarId x = g.add_input("x");
  const VarId s = g.add_state("s");
  const VarId u = g.add_op(OpKind::kAdd, "u", {s, x});
  g.set_state_update(s, u);
  g.mark_output(u);
  const auto trace = execute(g, {{5}, {5}, {5}});
  EXPECT_EQ(trace[0][u], 5u);
  EXPECT_EQ(trace[1][u], 10u);
  EXPECT_EQ(trace[2][u], 15u);
}

TEST(Interp, DiffeqConverges) {
  // Euler integration of y'' = -3xy' -3y with tiny dx behaves sanely
  // modulo 2^16; just verify determinism and that outputs change.
  const Cdfg g = diffeq();
  const std::vector<VarId> pis = g.inputs();  // dx, a
  std::vector<std::vector<std::uint64_t>> frames(4, {1, 1000});
  const auto trace = execute(g, frames);
  EXPECT_EQ(trace.size(), 4u);
  const VarId xl = g.find_var("xl");
  EXPECT_EQ(trace[1][xl], trace[0][xl] + 1);  // x advances by dx each iter
}

// Determinism of the random-DFG generator: property sweeps and multi-agent
// benches key workloads by seed, so a seed must name exactly one DFG — no
// hidden global RNG state, no dependence on which thread generates it.

TEST(Generator, SameSeedSameDfgAcrossConsecutiveRuns) {
  GeneratorParams p;
  p.num_ops = 40;
  p.num_inputs = 6;
  p.num_states = 3;
  p.seed = 0xD15C;
  const std::string first = random_cdfg(p).to_string();
  const std::string second = random_cdfg(p).to_string();
  EXPECT_EQ(first, second);

  p.seed = 0xD15D;
  EXPECT_NE(random_cdfg(p).to_string(), first);
}

TEST(Generator, SameSeedSameDfgAcrossThreadCounts) {
  GeneratorParams p;
  p.num_ops = 32;
  p.num_inputs = 5;
  p.num_states = 2;
  p.seed = 0x5EED;
  const std::string reference = random_cdfg(p).to_string();
  for (int workers : {1, 2, 4, 8}) {
    std::vector<std::string> got(static_cast<std::size_t>(workers));
    util::ThreadPool::shared().run(workers, workers, [&](int i, int) {
      GeneratorParams local = p;
      got[static_cast<std::size_t>(i)] = random_cdfg(local).to_string();
    });
    for (const std::string& s : got) EXPECT_EQ(s, reference);
  }
}

TEST(Interp, MuxSelect) {
  Cdfg g;
  const VarId s = g.add_input("s", 1);
  const VarId a = g.add_input("a");
  const VarId b = g.add_input("b");
  const VarId y = g.add_op(OpKind::kMux, "y", {s, a, b});
  g.mark_output(y);
  std::map<VarId, std::uint64_t> state;
  EXPECT_EQ(execute_iteration(g, {{s, 1}, {a, 10}, {b, 20}}, state)[y], 10u);
  EXPECT_EQ(execute_iteration(g, {{s, 0}, {a, 10}, {b, 20}}, state)[y], 20u);
}

}  // namespace
}  // namespace tsyn::cdfg
