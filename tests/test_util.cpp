#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/text.h"
#include "util/thread_pool.h"

namespace tsyn::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 200; ++i)
      EXPECT_LT(r.next_below(bound), static_cast<std::uint64_t>(bound));
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = r.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.next_bool(0.5);
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ShufflePermutes) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_factor(1.5), "1.50x");
  EXPECT_EQ(fmt_pct(0.973, 1), "97.3%");
}

TEST(Text, SplitDropsEmptyTokens) {
  const auto tokens = split("a  b\tc ", " \t");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[2], "c");
}

TEST(Text, SplitEmptyInput) { EXPECT_TRUE(split("", " ").empty()); }

TEST(Text, Trim) {
  EXPECT_EQ(trim("  hello \n"), "hello");
  EXPECT_EQ(trim("\t\t"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("input x", "input"));
  EXPECT_FALSE(starts_with("in", "input"));
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  int calls = 0;
  pool.run(0, 4, [&](int, int) { ++calls; });
  pool.run(-3, 4, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  std::vector<std::atomic<int>> seen(3);
  pool.run(3, 8, [&](int item, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 8);
    seen[item].fetch_add(1);
    sum.fetch_add(item);
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);  // each item exactly once
}

TEST(ThreadPool, TaskThrowPropagatesWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(64, 4,
               [&](int item, int) {
                 if (item == 17) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool must survive a throwing batch: workers are parked again and
  // the next run completes normally.
  std::atomic<int> done{0};
  pool.run(32, 4, [&](int, int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ThrowOnCallerThreadAlsoRecovers) {
  ThreadPool pool(4);
  // Item 0 is claimed by some slot (often the caller); whichever thread
  // throws, run() must rethrow exactly once on the caller.
  EXPECT_THROW(pool.run(1, 4, [&](int, int) { throw std::logic_error("x"); }),
               std::logic_error);
  int calls = 0;
  pool.run(2, 1, [&](int, int) { ++calls; });  // inline degenerate path
  EXPECT_EQ(calls, 2);
}

TEST(ThreadPool, ReentrantRunDoesNotDeadlock) {
  // A pool task that submits follow-on work to the same pool (the campaign
  // orchestrator's shape: a sweep job runs engines that themselves call
  // ThreadPool::shared().run). The caller always participates in its own
  // batch, so the nested run completes even with every worker busy.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run(4, 2, [&](int, int) {
    pool.run(8, 2, [&](int, int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPool, ReentrantRunOnSharedPool) {
  // Same property on the process-wide pool the subsystems actually share,
  // nested two levels deep.
  std::atomic<int> leaves{0};
  ThreadPool::shared().run(3, 4, [&](int, int) {
    ThreadPool::shared().run(3, 4, [&](int, int) {
      ThreadPool::shared().run(2, 2, [&](int, int) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 3 * 3 * 2);
}

TEST(ThreadPool, ReentrantThrowStillPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(2, 2,
                        [&](int, int) {
                          pool.run(4, 2, [&](int item, int) {
                            if (item == 3) throw std::runtime_error("inner");
                          });
                        }),
               std::runtime_error);
  // And the pool still works afterwards.
  std::atomic<int> done{0};
  pool.run(16, 2, [&](int, int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16);
}

// ---- JSON reader ----

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").boolean);
  EXPECT_FALSE(Json::parse("false").boolean);
  EXPECT_DOUBLE_EQ(Json::parse("42").number, 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").number, -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").str, "hi");
}

TEST(Json, ParsesNestedStructure) {
  const Json doc = Json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(doc.is_object());
  const Json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(a->arr[1].number, 2.0);
  EXPECT_TRUE(a->arr[2].find("b")->boolean);
  EXPECT_EQ(doc.find("c")->find("d")->str, "x");
  EXPECT_TRUE(doc.find("e")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, NumberOrFallsBack) {
  const Json doc = Json::parse(R"({"n": 7, "s": "x"})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1), 7.0);
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1), -1.0);   // wrong type
  EXPECT_DOUBLE_EQ(doc.number_or("gone", -1), -1.0);  // missing
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd")").str, "a\"b\\c\nd");
  EXPECT_EQ(Json::parse("\"A\\u00e9\"").str, "A\xc3\xa9");  // \u -> UTF-8
}

TEST(Json, KeepsObjectOrder) {
  const Json doc = Json::parse(R"({"z": 1, "a": 2})");
  ASSERT_EQ(doc.obj.size(), 2u);
  EXPECT_EQ(doc.obj[0].first, "z");
  EXPECT_EQ(doc.obj[1].first, "a");
}

TEST(Json, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1, ]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);  // trailing content
  try {
    Json::parse("[1, ");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, ParseErrorCarriesLineAndColumn) {
  // Error on line 3: "designs" value is not valid JSON.
  try {
    Json::parse("{\n  \"schema\": 1,\n  \"designs\": oops\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 14u);
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column 14"), std::string::npos) << what;
    // The context snippet shows the offending line with a caret under it.
    EXPECT_NE(what.find("\"designs\": oops"), std::string::npos) << what;
    EXPECT_NE(what.find('^'), std::string::npos) << what;
  }
}

TEST(Json, ParseErrorOnFirstLine) {
  try {
    Json::parse("nope");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 1u);
  }
}

TEST(Json, ParseErrorAtEndOfInput) {
  // Truncated document: the error points one past the last character.
  try {
    Json::parse("{\"a\": [1,\n2,\n");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 1u);
    EXPECT_EQ(e.offset(), 13u);
  }
}

TEST(Json, ParseErrorContextClipsLongLines) {
  // A very long single-line document must not dump the whole line into
  // the message; the snippet is clipped around the error position.
  std::string doc = "{\"key\": \"";
  doc += std::string(500, 'x');
  doc += "\", \"oops\": }";
  try {
    Json::parse(doc);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 300u) << what;
    EXPECT_NE(what.find("\"oops\": }"), std::string::npos) << what;
  }
}

TEST(Json, ParseErrorColumnCountsTabsAsOne) {
  try {
    Json::parse("{\n\t\"a\": !\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 7u);  // tab is one column, like offsets
  }
}

TEST(Json, RoundTripsBenchStyleDocument) {
  const Json doc = Json::parse(R"({
    "schema": 2, "seed": 24301,
    "ppsfp": [{"circuit": "diffeq", "gates": 1714, "serial_ms": 12.25}]
  })");
  EXPECT_DOUBLE_EQ(doc.number_or("schema", 0), 2.0);
  const Json* rows = doc.find("ppsfp");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->arr.size(), 1u);
  EXPECT_EQ(rows->arr[0].find("circuit")->str, "diffeq");
  EXPECT_DOUBLE_EQ(rows->arr[0].number_or("serial_ms", 0), 12.25);
}

}  // namespace
}  // namespace tsyn::util
