#include <gtest/gtest.h>

#include "gatelevel/atpg_comb.h"
#include "gatelevel/atpg_seq.h"
#include "gatelevel/expand.h"
#include "gatelevel/faultsim.h"

namespace tsyn::gl {
namespace {

TEST(Podem, SimpleAndGate) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  Podem podem(n);
  // Output sa0: needs a=b=1.
  const AtpgResult r = podem.generate({g, -1, false});
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_EQ(r.pi_values[0], V::k1);
  EXPECT_EQ(r.pi_values[1], V::k1);
}

TEST(Podem, InputFaultOnAnd) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  Podem podem(n);
  // a sa0 at the gate pin: set a=1 (activate), b=1 (propagate).
  const AtpgResult r = podem.generate({g, 0, false});
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_EQ(r.pi_values[0], V::k1);
  EXPECT_EQ(r.pi_values[1], V::k1);
}

TEST(Podem, UntestableRedundantFault) {
  // y = a OR (a AND b): the AND output sa0 is undetectable when a=1
  // masks it and a=0 blocks activation... actually a&b sa0 requires
  // a=1,b=1 to activate but then OR output is 1 either way: redundant.
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g1 = n.add_gate(GateType::kAnd, {a, b});
  const int g2 = n.add_gate(GateType::kOr, {a, g1});
  n.mark_output(g2);
  Podem podem(n);
  const AtpgResult r = podem.generate({g1, -1, false});
  EXPECT_EQ(r.status, AtpgStatus::kUntestable);
}

TEST(Podem, XorChainNeedsSpecificValues) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int c = n.add_input("c");
  const int g1 = n.add_gate(GateType::kXor, {a, b});
  const int g2 = n.add_gate(GateType::kXor, {g1, c});
  n.mark_output(g2);
  Podem podem(n);
  for (const Fault f : {Fault{g1, -1, false}, Fault{g1, -1, true},
                        Fault{a, -1, false}, Fault{a, -1, true}}) {
    const AtpgResult r = podem.generate(f);
    EXPECT_EQ(r.status, AtpgStatus::kDetected);
  }
}

TEST(Podem, AdderFullEfficiency) {
  Netlist n;
  const Word a = make_input_word(n, "a", 6);
  const Word b = make_input_word(n, "b", 6);
  const Word s = ripple_add(n, a, b, n.add_const(false));
  for (int bit : s) n.mark_output(bit);
  const auto faults = enumerate_faults(n);
  const AtpgCampaign c = run_combinational_atpg(n, faults);
  EXPECT_DOUBLE_EQ(c.fault_efficiency, 1.0);
  EXPECT_GT(c.fault_coverage, 0.999);
}

TEST(Podem, MultiplierHighCoverage) {
  Netlist n;
  const Word a = make_input_word(n, "a", 5);
  const Word b = make_input_word(n, "b", 5);
  const Word p = array_multiply(n, a, b);
  for (int bit : p) n.mark_output(bit);
  const auto faults = enumerate_faults(n);
  const AtpgCampaign c = run_combinational_atpg(n, faults, 2000);
  EXPECT_GT(c.fault_efficiency, 0.95);
  // The truncated array multiplier has genuinely redundant logic in the
  // upper carry chains, so coverage < efficiency is expected.
  EXPECT_GT(c.fault_coverage, 0.80);
}

TEST(Podem, GeneratedTestsActuallyDetect) {
  Netlist n;
  const Word a = make_input_word(n, "a", 4);
  const Word b = make_input_word(n, "b", 4);
  const Word s = ripple_sub(n, a, b);
  for (int bit : s) n.mark_output(bit);
  const auto faults = enumerate_faults(n);
  Podem podem(n);
  FaultSimulator sim(n);
  int checked = 0;
  for (std::size_t i = 0; i < faults.size() && checked < 25; i += 3) {
    const AtpgResult r = podem.generate(faults[i]);
    if (r.status != AtpgStatus::kDetected) continue;
    ++checked;
    std::vector<Bits> block(n.primary_inputs().size());
    for (std::size_t p = 0; p < block.size(); ++p)
      block[p] = r.pi_values[p] == V::k1   ? Bits::all1()
                 : r.pi_values[p] == V::k0 ? Bits::all0()
                                           : Bits::all0();
    std::vector<bool> det(faults.size(), false);
    // Mask everything except the target so run_block simulates it.
    std::vector<Fault> one{faults[i]};
    std::vector<bool> d1;
    sim.run_block(block, one, d1);
    EXPECT_TRUE(d1[0]) << "fault " << describe(n, faults[i]);
  }
  EXPECT_GE(checked, 20);
}

TEST(AtpgCampaign, WaveParallelStatsSumOverAllWorkers) {
  // One wave wide enough for the whole fault list: every fault is PODEM'd
  // independently before any grading, so the campaign totals must equal
  // the sum of standalone per-fault stats exactly. A last-writer-wins
  // aggregation across the pool's workers fails this equality.
  Netlist n;
  const Word a = make_input_word(n, "a", 4);
  const Word b = make_input_word(n, "b", 4);
  const Word s = ripple_add(n, a, b, n.add_const(false));
  for (int bit : s) n.mark_output(bit);
  const auto faults = enumerate_faults(n);

  FaultSimOptions o;
  o.num_threads = 4;
  o.atpg_wave = static_cast<int>(faults.size());
  const AtpgCampaign c = run_combinational_atpg(n, faults, 10000, o);

  AtpgStats expect;
  Podem podem(n);
  for (const Fault& f : faults) {
    const AtpgResult r = podem.generate(f, 10000);
    expect.decisions += r.stats.decisions;
    expect.backtracks += r.stats.backtracks;
    expect.implications += r.stats.implications;
  }
  EXPECT_EQ(c.total.decisions, expect.decisions);
  EXPECT_EQ(c.total.backtracks, expect.backtracks);
  EXPECT_EQ(c.total.implications, expect.implications);
  EXPECT_GT(c.total.decisions, 0);
}

TEST(AtpgCampaign, WaveParallelDeterministicAndMatchesSerial) {
  Netlist n;
  const Word a = make_input_word(n, "a", 5);
  const Word b = make_input_word(n, "b", 5);
  const Word s = ripple_sub(n, a, b);
  for (int bit : s) n.mark_output(bit);
  const auto faults = enumerate_faults(n);

  const AtpgCampaign serial = run_combinational_atpg(n, faults, 5000);

  FaultSimOptions o;
  o.num_threads = 4;
  o.atpg_wave = 8;
  const AtpgCampaign w1 = run_combinational_atpg(n, faults, 5000, o);
  const AtpgCampaign w2 = run_combinational_atpg(n, faults, 5000, o);

  // Deterministic for a fixed wave width, regardless of worker count.
  EXPECT_EQ(w1.status, w2.status);
  EXPECT_EQ(w1.tests, w2.tests);
  EXPECT_EQ(w1.total.decisions, w2.total.decisions);
  EXPECT_EQ(w1.total.backtracks, w2.total.backtracks);
  EXPECT_EQ(w1.total.implications, w2.total.implications);

  // Wave generation grades in wave order with the same PODEM per fault,
  // so statuses and tests match the serial campaign; the wave only spends
  // extra (counted) effort on faults a wave-mate's test would have
  // dropped.
  EXPECT_EQ(w1.status, serial.status);
  EXPECT_EQ(w1.tests, serial.tests);
  EXPECT_EQ(w1.fault_coverage, serial.fault_coverage);
  EXPECT_GE(w1.total.decisions, serial.total.decisions);
}

TEST(Podem, FrozenInputsStayX) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  Podem podem(n);
  podem.freeze_inputs({1});  // b may not be assigned
  const AtpgResult r = podem.generate({g, -1, false});
  // Detection impossible without b: PODEM must give up (untestable under
  // the freeze, reported as untestable after exhausting 'a').
  EXPECT_NE(r.status, AtpgStatus::kDetected);
}

TEST(Unroll, StructureAndMapping) {
  // 2-bit shift register.
  Netlist n;
  const int a = n.add_input("a");
  const int q0 = n.add_dff(-1, "q0");
  const int q1 = n.add_dff(-1, "q1");
  n.set_dff_input(q0, a);
  n.set_dff_input(q1, q0);
  n.mark_output(q1);
  const Unrolled u = unroll(n, 3);
  EXPECT_EQ(u.net.flops().size(), 0u);
  EXPECT_EQ(u.frozen_pi_positions.size(), 2u);  // frame-0 q0, q1
  // 3 frames x 1 PI + 2 frozen.
  EXPECT_EQ(u.net.primary_inputs().size(), 5u);
  EXPECT_EQ(u.net.primary_outputs().size(), 3u);
}

TEST(SeqAtpg, ShiftRegisterFaultNeedsPipelineDepth) {
  // Fault at the head of a 3-deep shift register needs 4 frames.
  Netlist n;
  const int a = n.add_input("a");
  int prev = a;
  std::vector<int> qs;
  for (int i = 0; i < 3; ++i) {
    const int q = n.add_dff(-1, "q" + std::to_string(i));
    n.set_dff_input(q, prev);
    qs.push_back(q);
    prev = q;
  }
  n.mark_output(prev);
  const SeqAtpgResult r = sequential_atpg(n, {a, -1, false}, 8);
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  EXPECT_EQ(r.frames_used, 4);
}

TEST(SeqAtpg, TestVerifiedBySequentialSim) {
  Netlist n;
  const int a = n.add_input("a");
  const int b = n.add_input("b");
  const int q = n.add_dff(-1, "q");
  const int g = n.add_gate(GateType::kAnd, {a, q});
  n.set_dff_input(q, b);
  n.mark_output(g);
  const Fault f{g, -1, false};
  const SeqAtpgResult r = sequential_atpg(n, f, 6);
  ASSERT_EQ(r.status, AtpgStatus::kDetected);
  // Replay the generated frames through the sequential fault simulator.
  std::vector<std::vector<Bits>> frames;
  for (const auto& fv : r.frame_inputs) {
    std::vector<Bits> bits(fv.size());
    for (std::size_t i = 0; i < fv.size(); ++i)
      bits[i] = fv[i] == V::k1 ? Bits::all1() : Bits::all0();
    frames.push_back(bits);
  }
  const auto det = sequential_fault_sim(n, frames, {f});
  EXPECT_TRUE(det[0]);
}

TEST(SeqAtpg, CampaignOnResettableCounter) {
  // 2-bit toggle counter with synchronous reset:
  //   q0' = !rst & (q0 ^ en);  q1' = !rst & (q1 ^ (q0 & en)).
  // The reset gives ATPG an initialization path from the unknown state.
  Netlist n;
  const int en = n.add_input("en");
  const int rst = n.add_input("rst");
  const int nrst = n.add_gate(GateType::kNot, {rst});
  const int q0 = n.add_dff(-1, "q0");
  const int q1 = n.add_dff(-1, "q1");
  const int t0 = n.add_gate(GateType::kXor, {q0, en});
  const int c0 = n.add_gate(GateType::kAnd, {q0, en});
  const int t1 = n.add_gate(GateType::kXor, {q1, c0});
  const int d0 = n.add_gate(GateType::kAnd, {nrst, t0});
  const int d1 = n.add_gate(GateType::kAnd, {nrst, t1});
  n.set_dff_input(q0, d0);
  n.set_dff_input(q1, d1);
  n.mark_output(t0);
  n.mark_output(t1);
  const auto faults = enumerate_faults(n);
  const SeqAtpgCampaign c = run_sequential_atpg(n, faults, 8, 4000);
  EXPECT_GT(c.fault_coverage, 0.5);
  EXPECT_GT(c.total.decisions, 0);
}

}  // namespace
}  // namespace tsyn::gl
