#include <gtest/gtest.h>

#include <algorithm>

#include "bist/abist.h"
#include "bist/bist_assign.h"
#include "bist/sessions.h"
#include "bist/share.h"
#include "bist/test_registers.h"
#include "bist/tfb.h"
#include "cdfg/benchmarks.h"
#include "hls/synthesis.h"
#include "rtl/area.h"

namespace tsyn::bist {
namespace {

using cdfg::Cdfg;
using cdfg::FuType;

hls::Synthesis shared_synthesis(const Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}};
  return hls::synthesize(g, opts);
}

TEST(Adjacency, SelfAdjacentDetected) {
  // An accumulator (merged state register written by the ALU it feeds) is
  // the canonical self-adjacent case.
  Cdfg g;
  const auto x = g.add_input("x");
  const auto s = g.add_state("s");
  const auto t = g.add_op(cdfg::OpKind::kAdd, "t", {s, x});
  const auto u = g.add_op(cdfg::OpKind::kAdd, "u", {t, x});
  g.set_state_update(s, u);
  g.mark_output(u);
  const hls::Synthesis syn = shared_synthesis(g);
  const BistAdjacency adj = analyze_adjacency(syn.rtl.datapath);
  EXPECT_GT(adj.self_adjacent_count(), 0);
}

TEST(Adjacency, ConventionalConfigurationAssignsRoles) {
  const hls::Synthesis syn = shared_synthesis(cdfg::diffeq());
  rtl::Datapath dp = syn.rtl.datapath;
  const int cbilbos = configure_bist_conventional(dp);
  const TestRegCounts counts = count_test_registers(dp);
  EXPECT_EQ(counts.cbilbo, cbilbos);
  EXPECT_EQ(counts.none, 0);  // every register got a role
  EXPECT_GT(counts.tpgr + counts.bilbo + counts.cbilbo, 0);
}

TEST(Adjacency, CbilboCostsShowInArea) {
  const hls::Synthesis syn = shared_synthesis(cdfg::diffeq());
  rtl::Datapath dp = syn.rtl.datapath;
  configure_bist_conventional(dp);
  EXPECT_GT(rtl::test_area_overhead(dp), 0.0);
}

TEST(BistAssign, ReducesSelfAdjacency) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis syn = shared_synthesis(g);

    // Conventional datapath self-adjacency.
    const int sa_before =
        analyze_adjacency(syn.rtl.datapath).self_adjacent_count();

    hls::Binding b = syn.binding;
    const std::vector<int> map = bist_aware_register_assignment(g, b);
    hls::rebind_registers(g, b, map);
    const hls::RtlDesign rtl = hls::build_rtl(g, syn.schedule, b);
    const int sa_after = analyze_adjacency(rtl.datapath).self_adjacent_count();
    EXPECT_LE(sa_after, sa_before) << g.name();
  }
}

TEST(BistAssign, RegisterCountStaysReasonable) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis syn = shared_synthesis(g);
    hls::Binding b = syn.binding;
    const std::vector<int> map = bist_aware_register_assignment(g, b);
    const int regs =
        1 + *std::max_element(map.begin(), map.end());
    EXPECT_LE(regs, syn.binding.num_regs + 3) << g.name();
  }
}

TEST(Tfb, NoSelfAdjacencyBeyondInherent) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Schedule s = hls::list_schedule(
        g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
    const TfbResult r = tfb_synthesis(g, s);
    const hls::RtlDesign rtl = hls::build_rtl(g, s, r.binding);
    const BistAdjacency adj = analyze_adjacency(rtl.datapath);
    EXPECT_LE(adj.self_adjacent_count(), r.inherent_self_adjacent)
        << g.name();
  }
}

TEST(Tfb, OneOutputRegisterPerTfb) {
  const Cdfg g = cdfg::dct4();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
  const TfbResult r = tfb_synthesis(g, s);
  // Registers 0..num_tfbs-1 are the TFB output registers; each is loaded
  // from exactly one FU.
  const hls::RtlDesign rtl = hls::build_rtl(g, s, r.binding);
  for (int reg = 0; reg < r.num_tfbs; ++reg) {
    std::set<int> fu_sources;
    for (const rtl::Source& src : rtl.datapath.regs[reg].drivers)
      if (src.kind == rtl::Source::Kind::kFu) fu_sources.insert(src.index);
    EXPECT_LE(fu_sources.size(), 1u);
  }
}

TEST(Tfb, MoreUnitsThanConventional) {
  // The one-output-register restriction costs FUs; XTFB recovers them.
  const Cdfg g = cdfg::ewf();
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
  const TfbResult tfb = tfb_synthesis(g, s);
  const XtfbResult xtfb = xtfb_synthesis(g, s);
  EXPECT_LE(xtfb.num_alus, tfb.num_tfbs);
  EXPECT_EQ(xtfb.cbilbos, 0);
}

TEST(Xtfb, ValidOnAllBenchmarks) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Schedule s = hls::list_schedule(
        g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
    const XtfbResult r = xtfb_synthesis(g, s);
    EXPECT_NO_THROW(hls::validate_binding(g, s, r.binding)) << g.name();
    EXPECT_GT(r.num_alus, 0) << g.name();
  }
}

TEST(Share, AuditFindsRolesOnConventional) {
  const Cdfg g = cdfg::diffeq();
  const hls::Synthesis syn = shared_synthesis(g);
  const BistRoles roles = audit_roles(g, syn.binding);
  EXPECT_GT(roles.tpgrs.size(), 0u);
  EXPECT_GT(roles.srs.size(), 0u);
}

TEST(Share, SharingReducesTestRegisters) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Synthesis syn = shared_synthesis(g);
    const BistRoles before = audit_roles(g, syn.binding);
    const ShareResult r = sharing_register_assignment(g, syn.binding);
    EXPECT_LE(r.roles.test_registers(), before.test_registers() + 1)
        << g.name();
    EXPECT_LE(r.roles.cbilbos, before.cbilbos + 1) << g.name();
  }
}

TEST(Share, MapIsInstallable) {
  const Cdfg g = cdfg::ewf();
  const hls::Synthesis syn = shared_synthesis(g);
  hls::Binding b = syn.binding;
  const ShareResult r = sharing_register_assignment(g, b);
  EXPECT_NO_THROW(hls::rebind_registers(g, b, r.reg_of_lifetime));
}

TEST(Sessions, AnalysisRunsOnConventional) {
  const Cdfg g = cdfg::diffeq();
  const hls::Synthesis syn = shared_synthesis(g);
  const SessionAnalysis a = schedule_test_sessions(g, syn.binding);
  EXPECT_EQ(a.num_modules, syn.binding.num_fus());
  EXPECT_GE(a.num_sessions, 1);
  EXPECT_LE(a.num_sessions, a.num_modules);
}

TEST(Sessions, ConflictAwareNeverWorse) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Schedule s = hls::list_schedule(
        g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
    const hls::Binding conventional = hls::make_binding(g, s);
    const SessionAnalysis base = schedule_test_sessions(g, conventional);

    const hls::Binding aware = conflict_aware_binding(g, s);
    const SessionAnalysis opt = schedule_test_sessions(g, aware);
    EXPECT_LE(opt.num_sessions, base.num_sessions + 1) << g.name();
  }
}

TEST(Sessions, SessionScheduleIsProper) {
  const Cdfg g = cdfg::ewf();
  const hls::Synthesis syn = shared_synthesis(g);
  const SessionAnalysis a = schedule_test_sessions(g, syn.binding);
  ASSERT_EQ(static_cast<int>(a.session_of_module.size()), a.num_modules);
  for (int m = 0; m < a.num_modules; ++m) {
    EXPECT_GE(a.session_of_module[m], 0);
    EXPECT_LT(a.session_of_module[m], a.num_sessions);
  }
}

TEST(Abist, StateCoverageInUnitRange) {
  const Cdfg g = cdfg::diffeq();
  const auto states = subspace_states(g);
  for (const auto& s : states) {
    const double cov = state_coverage(s, 4);
    EXPECT_GE(cov, 0.0);
    EXPECT_LE(cov, 1.0);
    EXPECT_GT(s.size(), 0u);
  }
}

TEST(Abist, MoreIterationsMoreCoverage) {
  const Cdfg g = cdfg::iir_biquad();
  AbistOptions few;
  few.iterations = 32;
  AbistOptions many;
  many.iterations = 512;
  const auto s_few = subspace_states(g, few);
  const auto s_many = subspace_states(g, many);
  for (cdfg::OpId o = 0; o < g.num_ops(); ++o)
    EXPECT_GE(s_many[o].size(), s_few[o].size());
}

TEST(Abist, CoverageBindingBeatsConventional) {
  for (const Cdfg& g : cdfg::standard_benchmarks()) {
    const hls::Schedule s = hls::list_schedule(
        g, hls::Resources{{FuType::kAlu, 2}, {FuType::kMultiplier, 2}});
    const hls::Binding conventional = hls::make_binding(g, s);
    const hls::Binding guided = coverage_maximizing_binding(g, s);
    const BindingCoverage base = binding_state_coverage(g, conventional);
    const BindingCoverage opt = binding_state_coverage(g, guided);
    EXPECT_GE(opt.mean, base.mean - 0.05) << g.name();
  }
}

TEST(Abist, OperandStreamsMatchBindingOps) {
  const Cdfg g = cdfg::diffeq();
  const hls::Synthesis syn = shared_synthesis(g);
  AbistOptions opts;
  opts.iterations = 64;
  const auto streams = fu_operand_streams(g, syn.binding, opts);
  ASSERT_EQ(static_cast<int>(streams.size()), syn.binding.num_fus());
  for (int fu = 0; fu < syn.binding.num_fus(); ++fu)
    EXPECT_EQ(streams[fu].size(),
              syn.binding.fu_ops[fu].size() * 64u);
}

}  // namespace
}  // namespace tsyn::bist
