// End-to-end functional verification: behavior -> schedule -> binding ->
// datapath + controller -> gate-level netlist, simulated cycle by cycle and
// compared against the behavioral interpreter.
//
// Timing model under test: input registers reload from the pads at each
// iteration boundary and every flop starts at 0, so the gate-level design
// executes iteration 0 on all-zero inputs and iteration k >= 1 on the real
// input values — exactly the trace the interpreter produces when fed a
// zero frame first.
#include <gtest/gtest.h>

#include <map>

#include "bist/tfb.h"
#include "cdfg/benchmarks.h"
#include "cdfg/interp.h"
#include "gatelevel/expand.h"
#include "hls/synthesis.h"
#include "testability/loop_avoid.h"
#include "util/rng.h"

namespace tsyn {
namespace {

constexpr int kWidth = 8;  // ring ops agree with 16-bit behavior mod 2^8

bool ring_safe(cdfg::OpKind k) {
  switch (k) {
    case cdfg::OpKind::kLt:
    case cdfg::OpKind::kEq:
    case cdfg::OpKind::kShr:
    case cdfg::OpKind::kDiv:
      return false;  // width truncation changes these results
    default:
      return true;
  }
}

struct Flow {
  std::string name;
  hls::Schedule schedule;
  hls::Binding binding;
};

void check_flow(const cdfg::Cdfg& g, const Flow& flow) {
  SCOPED_TRACE(g.name() + "/" + flow.name);
  const hls::RtlDesign design = hls::build_rtl(g, flow.schedule,
                                               flow.binding);
  gl::ExpandOptions opts;
  opts.width_override = kWidth;
  opts.controller = &design.controller;
  const gl::ExpandedDesign x = gl::expand_datapath(design.datapath, opts);

  // Input values, small but nontrivial.
  util::Rng rng(0xE2E + g.num_ops());
  const std::vector<cdfg::VarId> pis = g.inputs();
  std::vector<std::uint64_t> pi_values(pis.size());
  for (auto& v : pi_values) v = rng.next_below(40) + 1;

  // Reference: interpreter with a leading all-zero frame.
  const int kIters = 5;
  std::vector<std::vector<std::uint64_t>> frames(
      kIters, pi_values);
  frames[0].assign(pis.size(), 0);
  const auto trace = cdfg::execute(g, frames);

  // Gate-level: constant PI drive, all flops reset to 0.
  const int T = flow.schedule.num_steps;
  const int total_frames = kIters * T + 1;
  std::vector<std::vector<gl::Bits>> input_frames(
      total_frames,
      std::vector<gl::Bits>(x.netlist.primary_inputs().size(),
                            gl::Bits::all0()));
  // Precompute node -> PI position.
  std::map<int, int> pi_pos;
  for (std::size_t p = 0; p < x.netlist.primary_inputs().size(); ++p)
    pi_pos[x.netlist.primary_inputs()[p]] = static_cast<int>(p);
  for (int f = 0; f < total_frames; ++f)
    for (std::size_t i = 0; i < pis.size(); ++i)
      for (int b = 0; b < kWidth; ++b) {
        const int pos = pi_pos.at(x.pi_nodes[i][b]);
        input_frames[f][pos] =
            ((pi_values[i] >> b) & 1) ? gl::Bits::all1() : gl::Bits::all0();
      }

  std::vector<gl::Bits> init(x.netlist.flops().size(), gl::Bits::all0());
  const auto sim = gl::simulate_sequence(x.netlist, input_frames, &init);

  auto reg_value_at_frame = [&](int reg, int frame) -> std::uint64_t {
    std::uint64_t out = 0;
    for (int b = 0; b < kWidth; ++b) {
      const gl::Bits& bits = sim[frame][x.reg_q[reg][b]];
      EXPECT_EQ(bits.x & 1, 0u) << "unknown bit in " << g.name();
      if (bits.v & 1) out |= 1ULL << b;
    }
    return out;
  };

  // Compare iterations 1..3 for every ring-safe output.
  for (cdfg::VarId v : g.outputs()) {
    const cdfg::Variable& var = g.var(v);
    if (var.def_op >= 0 && !ring_safe(g.op(var.def_op).kind)) continue;
    const int reg = flow.binding.reg_of_var(v);
    ASSERT_GE(reg, 0);
    for (int k = 1; k <= 3; ++k) {
      const std::uint64_t expected = trace[k][v] & ((1u << kWidth) - 1);
      bool seen = false;
      for (int f = k * T + 1; f <= (k + 1) * T && !seen; ++f)
        seen = reg_value_at_frame(reg, f) == expected;
      EXPECT_TRUE(seen) << "output " << var.name << " iteration " << k
                        << " expected " << expected;
    }
  }
}

Flow conventional_flow(const cdfg::Cdfg& g) {
  hls::SynthesisOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  hls::Synthesis s = hls::synthesize(g, opts);
  return {"conventional", s.schedule, s.binding};
}

Flow loop_avoiding_flow(const cdfg::Cdfg& g) {
  testability::LoopAvoidOptions opts;
  opts.resources = hls::Resources{{cdfg::FuType::kAlu, 2},
                                  {cdfg::FuType::kMultiplier, 2}};
  opts.scan_vars = {};
  testability::LoopAvoidResult r =
      testability::loop_avoiding_synthesis(g, opts);
  return {"loop-avoiding", r.schedule, r.binding};
}

Flow tfb_flow(const cdfg::Cdfg& g) {
  const hls::Schedule s = hls::list_schedule(
      g, hls::Resources{{cdfg::FuType::kAlu, 2},
                        {cdfg::FuType::kMultiplier, 2}});
  bist::TfbResult r = bist::tfb_synthesis(g, s);
  return {"tfb", s, r.binding};
}

TEST(EndToEnd, Fig1Conventional) {
  check_flow(cdfg::fig1_example(), conventional_flow(cdfg::fig1_example()));
}

TEST(EndToEnd, Dct4Conventional) {
  check_flow(cdfg::dct4(), conventional_flow(cdfg::dct4()));
}

TEST(EndToEnd, TsengConventional) {
  check_flow(cdfg::tseng(), conventional_flow(cdfg::tseng()));
}

TEST(EndToEnd, IirConventional) {
  check_flow(cdfg::iir_biquad(), conventional_flow(cdfg::iir_biquad()));
}

TEST(EndToEnd, DiffeqConventional) {
  check_flow(cdfg::diffeq(), conventional_flow(cdfg::diffeq()));
}

TEST(EndToEnd, Fir4Conventional) {
  check_flow(cdfg::fir(4), conventional_flow(cdfg::fir(4)));
}

TEST(EndToEnd, ArLattice3Conventional) {
  check_flow(cdfg::ar_lattice(3), conventional_flow(cdfg::ar_lattice(3)));
}

TEST(EndToEnd, Wave4Conventional) {
  check_flow(cdfg::wave_filter(4), conventional_flow(cdfg::wave_filter(4)));
}

TEST(EndToEnd, Fig1LoopAvoiding) {
  check_flow(cdfg::fig1_example(),
             loop_avoiding_flow(cdfg::fig1_example()));
}

TEST(EndToEnd, IirLoopAvoiding) {
  check_flow(cdfg::iir_biquad(), loop_avoiding_flow(cdfg::iir_biquad()));
}

TEST(EndToEnd, Dct4LoopAvoiding) {
  check_flow(cdfg::dct4(), loop_avoiding_flow(cdfg::dct4()));
}

TEST(EndToEnd, Dct4Tfb) { check_flow(cdfg::dct4(), tfb_flow(cdfg::dct4())); }

TEST(EndToEnd, IirTfb) {
  check_flow(cdfg::iir_biquad(), tfb_flow(cdfg::iir_biquad()));
}

}  // namespace
}  // namespace tsyn
